// Command eclipse-serve runs the media-serving subsystem: an HTTP
// server that admits decode / encode / transcode jobs into bounded
// per-tenant queues and executes them on the goroutine KPN runtime
// under the Eclipse-style weighted-round-robin scheduler (see
// internal/serve and DESIGN.md §"Serving").
//
// Endpoints:
//
//	POST /v1/decode              ECL1 bitstream in, raw luma planes out
//	POST /v1/encode?w=&h=[&q=..] raw luma planes in, ECL1 bitstream out
//	POST /v1/transcode?q=        ECL1 in, re-encoded ECL1 out
//	GET  /healthz                liveness (200 while the process is up)
//	GET  /readyz                 readiness (503 + X-Eclipse-Draining while draining)
//	GET  /varz                   JSON status document
//	GET  /metrics                Prometheus text exposition
//
// Requests carry an optional X-Tenant header (scheduling identity,
// default "default") and an optional X-Timeout-Ms deadline that is
// enforced end-to-end through the job's Kahn network.
//
// Identical requests are served from a content-addressed result cache
// with singleflight collapse (-cache-bytes budget, per-tenant on/off
// via the fifth -tenant field); responses carry an X-Cache outcome and
// a content-address ETag honoring If-None-Match (see DESIGN.md §8).
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, in-flight
// and queued jobs complete (bounded by -drain), a serving + cache
// report is printed to stderr, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"eclipse/internal/serve"
)

// tenantFlags collects repeated -tenant
// name:weight[:queuecap[:decodeworkers[:cache[:segments]]]] flags.
type tenantFlags []serve.TenantConfig

func (t *tenantFlags) String() string { return fmt.Sprintf("%v", []serve.TenantConfig(*t)) }

func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 6 {
		return fmt.Errorf("want name:weight[:queuecap[:decodeworkers[:cache[:segments]]]], got %q", v)
	}
	tc := serve.TenantConfig{Name: parts[0]}
	w, err := strconv.Atoi(parts[1])
	if err != nil || w < 1 {
		return fmt.Errorf("bad weight in %q", v)
	}
	tc.Weight = w
	if len(parts) >= 3 {
		c, err := strconv.Atoi(parts[2])
		if err != nil || c < 1 {
			return fmt.Errorf("bad queue cap in %q", v)
		}
		tc.QueueCap = c
	}
	if len(parts) >= 4 {
		dw, err := strconv.Atoi(parts[3])
		if err != nil || dw < 1 {
			return fmt.Errorf("bad decode workers in %q", v)
		}
		tc.DecodeWorkers = dw
	}
	if len(parts) >= 5 {
		switch parts[4] {
		case "on", "1":
			tc.Cache = serve.CacheOn
		case "off", "0":
			tc.Cache = serve.CacheOff
		default:
			return fmt.Errorf("bad cache mode %q in %q (want on/off)", parts[4], v)
		}
	}
	if len(parts) == 6 {
		xs, err := strconv.Atoi(parts[5])
		if err != nil || xs < 1 {
			return fmt.Errorf("bad transcode segments in %q", v)
		}
		tc.TranscodeSegments = xs
	}
	*t = append(*t, tc)
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 2, "executor pool size (the coprocessor count)")
		slice    = flag.Duration("slice", 5*time.Millisecond, "base scheduling slice for a weight-1 tenant")
		queueCap = flag.Int("queue-cap", 8, "default per-tenant admission bound")
		maxBody  = flag.Int64("max-body", 64<<20, "request body cap in bytes")
		poolCap  = flag.Int("frame-pool", 256, "frames retained by the shared pool")
		decodeW  = flag.Int("decode-workers", 1, "default per-tenant decode worker count (1 = six-task KPN pipeline, >1 = pipeline-parallel decoder)")
		encodeW  = flag.Int("encode-workers", 0, "per-job encode analysis fan-out (0 = NumCPU)")
		cacheB   = flag.Int64("cache-bytes", 256<<20, "result cache byte budget (0 disables)")
		cacheAge = flag.Duration("cache-max-age", 60*time.Second, "freshness window advertised via Cache-Control max-age (bounds gateway L1 TTLs)")
		xcodeSeg = flag.Int("transcode-segments", 0, "segment fan-out for transcode jobs over closed-GOP cuts (1 = fused single pipeline, 0 = min(NumCPU, 8))")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		tenants  tenantFlags
	)
	flag.Var(&tenants, "tenant", "declare a tenant as name:weight[:queuecap[:decodeworkers[:cache[:segments]]]] (repeatable; cache = on/off)")
	flag.Parse()

	cacheBytes := *cacheB
	if cacheBytes <= 0 {
		cacheBytes = -1 // Config treats 0 as "use the default"; the flag's 0 means off
	}
	srv := serve.New(serve.Config{
		Workers:           *workers,
		BaseSlice:         *slice,
		QueueCap:          *queueCap,
		MaxBodyBytes:      *maxBody,
		FramePoolCap:      *poolCap,
		DecodeWorkers:     *decodeW,
		EncodeWorkers:     *encodeW,
		CacheBytes:        cacheBytes,
		CacheMaxAge:       *cacheAge,
		TranscodeSegments: *xcodeSeg,
		Tenants:           tenants,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("eclipse-serve listening on %s (%d workers, %s base slice)", *addr, *workers, *slice)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("eclipse-serve: %v", err)
	case s := <-sig:
		log.Printf("eclipse-serve: %v — draining (budget %s)", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("eclipse-serve: drain incomplete: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("eclipse-serve: http shutdown: %v", err)
	}
	srv.WriteReport(os.Stderr)
	log.Printf("eclipse-serve: bye")
}
