// Command eclipse-viz renders trace CSV files (as written by
// eclipse-sim -csv or System.WriteTraceCSV) as ASCII charts — the
// textual counterpart of the paper's Figure 9/10 performance viewer.
// The viewer is deliberately decoupled from the simulator (Section 7):
// it works on any CSV in `cycle,series,value` long form.
//
// Usage:
//
//	eclipse-viz -csv trace.csv [-series name]... [-list] [-w cols] [-h rows]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"eclipse/internal/trace"
	"eclipse/internal/viz"
)

type seriesFlag []string

func (s *seriesFlag) String() string { return strings.Join(*s, ",") }
func (s *seriesFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	csvPath := flag.String("csv", "", "trace CSV file (required)")
	list := flag.Bool("list", false, "list available series and exit")
	width := flag.Int("w", 72, "chart width in columns")
	height := flag.Int("h", 12, "chart height in rows")
	var names seriesFlag
	flag.Var(&names, "series", "series to render (repeatable; default: all)")
	flag.Parse()

	if *csvPath == "" {
		fmt.Fprintln(os.Stderr, "eclipse-viz: -csv is required")
		flag.Usage()
		os.Exit(2)
	}
	series, err := loadCSV(*csvPath)
	if err != nil {
		fail(err)
	}
	all := make([]string, 0, len(series))
	for n := range series {
		all = append(all, n)
	}
	sort.Strings(all)
	if *list {
		for _, n := range all {
			fmt.Printf("%s (%d samples)\n", n, len(series[n].X))
		}
		return
	}
	want := []string(names)
	if len(want) == 0 {
		want = all
	}
	chart := viz.Chart{Width: *width, Height: *height}
	for _, n := range want {
		s, ok := series[n]
		if !ok {
			fail(fmt.Errorf("no series %q (use -list)", n))
		}
		fmt.Print(chart.Render(s, ""))
		fmt.Println()
	}
}

// loadCSV parses a long-form trace CSV file into series.
func loadCSV(path string) (map[string]*trace.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	series, err := trace.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return series, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "eclipse-viz:", err)
	os.Exit(1)
}
