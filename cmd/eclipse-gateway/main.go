// Command eclipse-gateway fronts a fleet of eclipse-serve backends with
// the cluster tier (internal/cluster): rendezvous-hashed routing on the
// content-address cache key, active /readyz health checking with
// rise/fall thresholds, passive ejection on consecutive transport
// failures, bounded jittered retries on safe failures (connect errors
// and 429/503 pushback, whose Retry-After is relayed verbatim), tail
// hedging at the per-kind p95, and an L1 edge cache keyed on the same
// content address the ring routes on: warm hits are answered from
// gateway memory (X-Cache: l1-hit), stale entries revalidate with
// If-None-Match against the backend's L2 (a 304 refreshes residency
// without a body transfer), and a same-key storm collapses to one
// backend round-trip.
//
// Endpoints mirror a single backend:
//
//	POST /v1/decode              routed by content address, X-Backend names the server
//	POST /v1/encode?w=&h=[&q=..]
//	POST /v1/transcode?q=
//	GET  /healthz                gateway liveness
//	GET  /readyz                 200 while >= 1 backend is routable
//	GET  /varz                   JSON status (per-backend states and counters)
//	GET  /metrics                Prometheus text exposition
//
// X-Tenant and X-Timeout-Ms pass through; the timeout budget is
// enforced at the gateway and the remaining budget is re-emitted to
// each upstream attempt.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eclipse/internal/cluster"
)

// backendFlags collects repeated -backend host:port flags.
type backendFlags []string

func (b *backendFlags) String() string { return strings.Join(*b, ",") }

func (b *backendFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty backend address")
	}
	*b = append(*b, v)
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8070", "listen address")
		probeIvl  = flag.Duration("probe-interval", 500*time.Millisecond, "active /readyz probe period per backend")
		probeTO   = flag.Duration("probe-timeout", time.Second, "single probe timeout")
		rise      = flag.Int("rise", 2, "consecutive good probes to admit a backend")
		fall      = flag.Int("fall", 2, "consecutive failed probes to remove a backend")
		passFall  = flag.Int("passive-fall", 3, "consecutive proxied transport failures to eject without a probe")
		retries   = flag.Int("retries", 2, "max retry attempts after safe failures (-1 disables)")
		retryBase = flag.Duration("retry-base", 10*time.Millisecond, "first retry backoff (doubles, jittered)")
		retryMax  = flag.Duration("retry-max", 250*time.Millisecond, "retry backoff cap")
		noHedge   = flag.Bool("no-hedge", false, "disable tail hedging")
		hedgeAft  = flag.Duration("hedge-after", 0, "fixed hedge trigger delay (0 = adaptive per-kind p95)")
		maxBody   = flag.Int64("max-body", 64<<20, "request body cap in bytes")
		l1Bytes   = flag.Int64("l1-bytes", 256<<20, "gateway L1 edge cache byte budget (0 disables)")
		l1MaxObj  = flag.Int64("l1-max-object", 8<<20, "largest response buffered (and cached) at the gateway; bigger responses stream through")
		l1TTL     = flag.Duration("l1-ttl", 10*time.Second, "L1 freshness ceiling; entries older than this revalidate against the backend ETag")
		waitReady = flag.Duration("wait-ready", 0, "block until >= 1 backend is routable before serving (0 = don't wait)")
		backends  backendFlags
	)
	flag.Var(&backends, "backend", "eclipse-serve backend as host:port or URL (repeatable)")
	flag.Parse()

	if *retries < 0 {
		*retries = -1 // Config: negative means zero retries
	}
	gw, err := cluster.New(cluster.Config{
		Backends:      backends,
		ProbeInterval: *probeIvl,
		ProbeTimeout:  *probeTO,
		Rise:          *rise,
		Fall:          *fall,
		PassiveFall:   *passFall,
		MaxRetries:    *retries,
		RetryBase:     *retryBase,
		RetryMax:      *retryMax,
		HedgeDisabled: *noHedge,
		HedgeAfter:    *hedgeAft,
		MaxBodyBytes:  *maxBody,
		L1Bytes:       *l1Bytes,
		L1MaxObject:   *l1MaxObj,
		L1TTL:         *l1TTL,
	})
	if err != nil {
		log.Fatalf("eclipse-gateway: %v", err)
	}
	gw.Start()

	if *waitReady > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *waitReady)
		err := gw.WaitReady(ctx, 1)
		cancel()
		if err != nil {
			log.Fatalf("eclipse-gateway: %v", err)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("eclipse-gateway listening on %s (%d backends, probe %s, rise/fall %d/%d)",
		*addr, len(backends), *probeIvl, *rise, *fall)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("eclipse-gateway: %v", err)
	case s := <-sig:
		log.Printf("eclipse-gateway: %v — shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("eclipse-gateway: http shutdown: %v", err)
	}
	gw.Stop()
	gw.WritePrometheus(os.Stderr)
	log.Printf("eclipse-gateway: bye")
}
