package main

// Kernel performance trajectory: `eclipse-bench kernel [entry-id [path]]`
// measures the simulation engine's wall-clock speed (not simulated
// cycles) and records the result in BENCH_kernel.json so successive PRs
// accumulate a machine-readable perf history.
//
// Two measurements are taken:
//
//   - decode: the Figure 10 QCIF IPBB workload (the same stream as
//     BenchmarkFig10DecodeGOP), reporting wall ns per run, allocations
//     per run, and executed kernel events per wall second;
//   - kernel: a pure producer/consumer event stress on a bare
//     sim.Kernel, isolating engine overhead from model work.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eclipse"
	"eclipse/internal/sim"
)

// kernelBenchEntry is one measured point of the perf trajectory.
type kernelBenchEntry struct {
	ID   string `json:"id"`
	Date string `json:"date"`
	Note string `json:"note,omitempty"`

	// Decode workload (Fig. 10 QCIF stream, one full simulation).
	DecodeNsPerOp      float64 `json:"decode_ns_per_op"`
	DecodeAllocsPerOp  float64 `json:"decode_allocs_per_op"`
	DecodeBytesPerOp   float64 `json:"decode_bytes_per_op"`
	DecodeSimCycles    uint64  `json:"decode_sim_cycles"`
	DecodeEvents       uint64  `json:"decode_events,omitempty"`
	DecodeMeventsPerS  float64 `json:"decode_mevents_per_sec,omitempty"`
	KernelMeventsPerS  float64 `json:"kernel_mevents_per_sec,omitempty"`
	KernelAllocsPerOp  float64 `json:"kernel_allocs_per_op,omitempty"`
	KernelStressEvents uint64  `json:"kernel_stress_events,omitempty"`

	// Shell transport microbenchmark (`eclipse-bench shell`): wall-clock
	// cost per KiB streamed producer->consumer and steady-state cache
	// behavior. Zero allocs/KiB is the target after the pooled-transport
	// rework.
	ShellNsPerKB      float64 `json:"shell_ns_per_kib,omitempty"`
	ShellMBPerS       float64 `json:"shell_mib_per_sec,omitempty"`
	ShellAllocsPerKB  float64 `json:"shell_allocs_per_kib,omitempty"`
	ShellReadHitRate  float64 `json:"shell_read_hit_rate,omitempty"`
	ShellWriteHitRate float64 `json:"shell_write_hit_rate,omitempty"`

	// Media kernel microbenchmarks (`eclipse-bench media`): wall-clock
	// throughput of the functional codec kernels outside the cycle
	// simulator, tracking the fast-kernels rework. "MB" is macroblocks.
	MediaVLDMBPerS      float64 `json:"media_vld_mb_per_sec,omitempty"`
	MediaVLDMiBPerS     float64 `json:"media_vld_mib_per_sec,omitempty"`
	MediaVLDAllocs      float64 `json:"media_vld_allocs_per_run,omitempty"`
	MediaSADMevalsPerS  float64 `json:"media_sad_mevals_per_sec,omitempty"`
	MediaIDCTBlocksPerS float64 `json:"media_idct_blocks_per_sec,omitempty"`
	MediaEncodeMBPerS   float64 `json:"media_encode_mb_per_sec,omitempty"`
	MediaEncodeWorkers  int     `json:"media_encode_workers,omitempty"`
	MediaDecodeMBPerS   float64 `json:"media_decode_mb_per_sec,omitempty"`
	MediaDecodeWorkers  int     `json:"media_decode_workers,omitempty"`

	// Serving-path load generation (`eclipse-bench loadgen`): an
	// in-process eclipse-serve instance driven at a target request rate
	// by two tenants of unequal weight; every 200 response is verified
	// bit-identical to the offline codec before the rates are recorded.
	ServeTargetRPS   float64 `json:"serve_target_rps,omitempty"`
	ServeAchievedRPS float64 `json:"serve_achieved_rps,omitempty"`
	ServeWorkers     int     `json:"serve_workers,omitempty"`
	ServeBaseSliceMs float64 `json:"serve_base_slice_ms,omitempty"`
	ServeRequests    uint64  `json:"serve_requests,omitempty"`
	ServeRejectRate  float64 `json:"serve_reject_rate,omitempty"`
	ServePreemptions uint64  `json:"serve_preemptions,omitempty"`
	ServeDecodeP50Ms float64 `json:"serve_decode_p50_ms,omitempty"`
	ServeDecodeP99Ms float64 `json:"serve_decode_p99_ms,omitempty"`
	ServeXcodeP50Ms  float64 `json:"serve_transcode_p50_ms,omitempty"`
	ServeXcodeP99Ms  float64 `json:"serve_transcode_p99_ms,omitempty"`

	// Result-cache view of the zipfian loadgen run: hit rate over the
	// whole mix, singleflight collapses, and the latency split between
	// the resident-hit path and the cold-miss path.
	ServeCacheHitRate   float64 `json:"serve_cache_hit_rate,omitempty"`
	ServeCacheCollapsed uint64  `json:"serve_cache_collapsed,omitempty"`
	ServeCacheHitP50Ms  float64 `json:"serve_cache_hit_p50_ms,omitempty"`
	ServeCacheHitP99Ms  float64 `json:"serve_cache_hit_p99_ms,omitempty"`
	ServeCacheMissP50Ms float64 `json:"serve_cache_miss_p50_ms,omitempty"`
	ServeCacheMissP99Ms float64 `json:"serve_cache_miss_p99_ms,omitempty"`

	// Fused streaming transcode (the transcode-heavy loadgen phase, run
	// cache-disabled so every request exercises the full pipeline):
	// latency quantiles of the fused decoder→encoder path, its peak
	// in-flight frame count (the bounded-memory claim: O(GOP M), not
	// O(clip frames)), and the per-op heap traffic of the fused job
	// against the retained two-phase baseline on the same clip.
	XcodeP50Ms           float64 `json:"serve_transcode_fused_p50_ms,omitempty"`
	XcodeP99Ms           float64 `json:"serve_transcode_fused_p99_ms,omitempty"`
	XcodePeakFrames      int64   `json:"transcode_peak_frames_inflight,omitempty"`
	XcodeClipFrames      int     `json:"transcode_clip_frames,omitempty"`
	XcodeBytesPerOp      float64 `json:"transcode_bytes_per_op,omitempty"`
	XcodeMsPerOp         float64 `json:"transcode_ms_per_op,omitempty"`
	XcodeTwoPhaseBytesOp float64 `json:"transcode_two_phase_bytes_per_op,omitempty"`
	XcodeTwoPhaseMsPerOp float64 `json:"transcode_two_phase_ms_per_op,omitempty"`
	XcodePushStalls      uint64  `json:"transcode_push_stalls,omitempty"`
	XcodePullStalls      uint64  `json:"transcode_pull_stalls,omitempty"`

	// GOP-parallel segmented transcode (`eclipse-bench gop`, also run as
	// loadgen phase 5): per-op wall time of the same closed-GOP clip at
	// segment fan-out 1 (the fused pipeline, the serial baseline) vs K
	// segments, with decode/encode workers pinned to 1 on both sides so
	// segmentation is the only variable. The speedup is only meaningful
	// on multi-core hosts — transcode_seg_num_cpu records the machine;
	// on a single CPU the segmented path degenerates to serial work plus
	// indexing overhead.
	// Gateway cluster bench (`eclipse-bench gateway`): 3 in-process
	// backends (one with an injected 60ms stall on every 10th request)
	// behind the internal/cluster gateway. Records cluster-wide cache
	// affinity (X-Cache hit rate on a warm catalog), the hedge rate, and
	// the latency quantiles with hedging off, with hedging on, and with
	// hedging on while one backend is hard-killed mid-run. Every 200 is
	// verified byte-identical to the offline codec before recording.
	GatewayBackends     int     `json:"gateway_backends,omitempty"`
	GatewayRequests     uint64  `json:"gateway_requests,omitempty"`
	GatewayAffinityRate float64 `json:"gateway_affinity_hit_rate,omitempty"`
	GatewayHedgeRate    float64 `json:"gateway_hedge_rate,omitempty"`
	GatewayHedgeWinRate float64 `json:"gateway_hedge_win_rate,omitempty"`
	GatewayP50Ms        float64 `json:"gateway_p50_ms,omitempty"`
	GatewayP99Ms        float64 `json:"gateway_p99_ms,omitempty"`
	GatewayNoHedgeP50Ms float64 `json:"gateway_nohedge_p50_ms,omitempty"`
	GatewayNoHedgeP99Ms float64 `json:"gateway_nohedge_p99_ms,omitempty"`
	GatewayKilledP50Ms  float64 `json:"gateway_killed_p50_ms,omitempty"`
	GatewayKilledP99Ms  float64 `json:"gateway_killed_p99_ms,omitempty"`
	GatewayRetries      uint64  `json:"gateway_retries,omitempty"`
	GatewayEjections    uint64  `json:"gateway_ejections,omitempty"`

	// Gateway L1 edge-cache bench (`eclipse-bench gatewaycache`): 3
	// backends behind a 5ms simulated network gap. Records the warm-hit
	// latency split (L1 hit from gateway memory vs proxied two-hop warm
	// hit), the run's L1 hit rate, how many requests reached the fleet
	// during the measured hit pass (must be 0) and during a 32-way
	// same-key storm (must be 1), and the stale-refresh-via-304 count.
	GatewayL1HitRate          float64 `json:"gateway_l1_hit_rate,omitempty"`
	GatewayL1HitP50Ms         float64 `json:"gateway_l1_hit_p50_ms,omitempty"`
	GatewayL1HitP99Ms         float64 `json:"gateway_l1_hit_p99_ms,omitempty"`
	GatewayL1ProxiedP50Ms     float64 `json:"gateway_l1_proxied_p50_ms,omitempty"`
	GatewayL1ProxiedP99Ms     float64 `json:"gateway_l1_proxied_p99_ms,omitempty"`
	GatewayL1Speedup          float64 `json:"gateway_l1_hit_speedup,omitempty"`
	GatewayL1Revalidations    uint64  `json:"gateway_l1_revalidations,omitempty"`
	GatewayL1BackendReqs      uint64  `json:"gateway_l1_backend_requests,omitempty"`
	GatewayL1StormWidth       int     `json:"gateway_l1_storm_width,omitempty"`
	GatewayL1StormBackendReqs uint64  `json:"gateway_l1_storm_backend_requests,omitempty"`

	XcodeSegMsPerOp    float64 `json:"transcode_seg_ms_per_op,omitempty"`
	XcodeSeg1MsPerOp   float64 `json:"transcode_seg1_ms_per_op,omitempty"`
	XcodeSegSpeedup    float64 `json:"transcode_seg_speedup,omitempty"`
	XcodeSegSegments   int     `json:"transcode_seg_segments,omitempty"`
	XcodeSegClipFrames int     `json:"transcode_seg_clip_frames,omitempty"`
	XcodeSegPeakFrames int64   `json:"transcode_seg_peak_frames,omitempty"`
	XcodeSegSkewMs     float64 `json:"transcode_seg_skew_ms,omitempty"`
	XcodeSegNumCPU     int     `json:"transcode_seg_num_cpu,omitempty"`
}

// kernelBenchFile is the on-disk BENCH_kernel.json document.
type kernelBenchFile struct {
	Benchmark string             `json:"benchmark"`
	Schema    string             `json:"schema"`
	Updated   string             `json:"updated"`
	Entries   []kernelBenchEntry `json:"entries"`
}

const kernelBenchPath = "BENCH_kernel.json"

// kernelBench measures the engine and updates the trajectory file.
func kernelBench() {
	id := "head-" + time.Now().Format("2006-01-02")
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("Kernel engine speed (wall clock) -> " + path)

	entry := kernelBenchEntry{ID: id, Date: time.Now().Format("2006-01-02")}
	measureDecode(&entry)
	measureKernelStress(&entry)

	fmt.Printf("  decode:  %8.1f ms/run  %10.0f allocs/run  %6.2f Mevents/s  (%d simcycles, %d events)\n",
		entry.DecodeNsPerOp/1e6, entry.DecodeAllocsPerOp, entry.DecodeMeventsPerS,
		entry.DecodeSimCycles, entry.DecodeEvents)
	fmt.Printf("  kernel:  %6.2f Mevents/s pure-event stress (%d events, %0.0f allocs/run)\n",
		entry.KernelMeventsPerS, entry.KernelStressEvents, entry.KernelAllocsPerOp)

	doc := loadKernelBench(path)
	e := benchEntry(&doc, entry.ID)
	// Merge: only the decode_*/kernel_* fields belong to this subcommand;
	// shell_*/media_* results recorded under the same ID are preserved.
	e.Date = entry.Date
	e.DecodeNsPerOp = entry.DecodeNsPerOp
	e.DecodeAllocsPerOp = entry.DecodeAllocsPerOp
	e.DecodeBytesPerOp = entry.DecodeBytesPerOp
	e.DecodeSimCycles = entry.DecodeSimCycles
	e.DecodeEvents = entry.DecodeEvents
	e.DecodeMeventsPerS = entry.DecodeMeventsPerS
	e.KernelMeventsPerS = entry.KernelMeventsPerS
	e.KernelAllocsPerOp = entry.KernelAllocsPerOp
	e.KernelStressEvents = entry.KernelStressEvents
	saveKernelBench(path, &doc)
	fmt.Printf("  wrote entry %q (%d entries total)\n\n", entry.ID, len(doc.Entries))
}

// benchEntry returns a pointer to the entry with the given ID, appending
// a fresh one if absent. The pointer stays valid until the next append.
func benchEntry(doc *kernelBenchFile, id string) *kernelBenchEntry {
	for i := range doc.Entries {
		if doc.Entries[i].ID == id {
			return &doc.Entries[i]
		}
	}
	doc.Entries = append(doc.Entries, kernelBenchEntry{
		ID: id, Date: time.Now().Format("2006-01-02"),
	})
	return &doc.Entries[len(doc.Entries)-1]
}

// saveKernelBench rewrites the trajectory file with a fresh timestamp.
func saveKernelBench(path string, doc *kernelBenchFile) {
	doc.Updated = time.Now().UTC().Format(time.RFC3339)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fail(err)
	}
}

// loadKernelBench reads an existing trajectory file, or starts a new one.
func loadKernelBench(path string) kernelBenchFile {
	doc := kernelBenchFile{
		Benchmark: "eclipse simulation-engine speed",
		Schema:    "entries[]: {id, date, decode_* from the Fig10 QCIF workload, kernel_* from the pure-event stress, shell_* from the transport stress, media_* from the codec kernel microbench}",
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return doc
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "eclipse-bench: ignoring malformed %s: %v\n", path, err)
	}
	return doc
}

// measureDecode runs the Figure 10 QCIF decode workload (best of three)
// and fills the decode_* fields.
func measureDecode(e *kernelBenchEntry) {
	stream := workload(176, 144, 12, 6, 1)
	var ms0, ms1 runtime.MemStats
	best := time.Duration(1<<63 - 1)
	for round := 0; round < 3; round++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := eclipse.RunFig10Stream(stream)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			fail(err)
		}
		if wall < best {
			best = wall
			e.DecodeNsPerOp = float64(wall.Nanoseconds())
			e.DecodeAllocsPerOp = float64(ms1.Mallocs - ms0.Mallocs)
			e.DecodeBytesPerOp = float64(ms1.TotalAlloc - ms0.TotalAlloc)
			e.DecodeSimCycles = res.Cycles
			e.DecodeEvents = res.Events
			e.DecodeMeventsPerS = float64(res.Events) / wall.Seconds() / 1e6
		}
	}
}

// measureKernelStress runs a bare-kernel producer/consumer event mix
// (short delays through the timing wheel, signal wakeups, occasional
// far-future heap events) and fills the kernel_* fields.
func measureKernelStress(e *kernelBenchEntry) {
	run := func() (events uint64, allocs float64, wall time.Duration) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		k := sim.NewKernel()
		sig := k.NewSignal("data")
		const rounds = 200_000
		k.NewProc("producer", 0, func(p *sim.Proc) {
			for j := 0; j < rounds; j++ {
				p.Delay(uint64(1 + j%7))
				sig.Fire()
				if j%64 == 0 {
					p.Delay(200)
				}
			}
		})
		for c := 0; c < 3; c++ {
			k.NewProc("consumer", 0, func(p *sim.Proc) {
				for j := 0; j < rounds; j++ {
					p.Wait(sig)
					p.Delay(uint64(1 + j%5))
				}
			})
		}
		if err := k.Run(0); err != nil {
			if _, ok := err.(*sim.DeadlockError); !ok {
				fail(err)
			}
		}
		wall = time.Since(start)
		runtime.ReadMemStats(&ms1)
		return k.Events(), float64(ms1.Mallocs - ms0.Mallocs), wall
	}
	var bestRate float64
	for round := 0; round < 3; round++ {
		events, allocs, wall := run()
		rate := float64(events) / wall.Seconds() / 1e6
		if rate > bestRate {
			bestRate = rate
			e.KernelMeventsPerS = rate
			e.KernelAllocsPerOp = allocs
			e.KernelStressEvents = events
		}
	}
}
