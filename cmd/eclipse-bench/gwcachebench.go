package main

// Gateway L1 edge-cache benchmark: `eclipse-bench gatewaycache
// [entry-id [path]]` stands up 3 in-process eclipse-serve backends
// behind the internal/cluster gateway and records the gateway_l1_*
// trajectory fields of BENCH_kernel.json.
//
// Every backend is wrapped with a fixed 5ms sleep per media request —
// the simulated network RTT between an edge gateway and its backend
// fleet. That is the cost the L1 exists to avoid: a warm L1 hit is
// answered from gateway memory without crossing that gap. Hedging is
// disabled on every gateway so the cache is the only variable.
//
// Five phases, each byte-verified against the offline codec:
//
//	proxied  L1 off, backend L2 warm — the two-hop baseline (every
//	         request pays the RTT plus a backend cache hit)
//	hit      L1 on, catalog resident — warm hits from gateway memory;
//	         the backend must see zero requests during this pass
//	storm    32 concurrent requests for one cold key — the gateway
//	         singleflight must cost the fleet exactly one round-trip
//	reval    a gateway with a 40ms L1 TTL — the stale re-request must
//	         refresh via If-None-Match/304 without a body transfer
//	death    a backend that aborts mid-body — the buffered proxy must
//	         answer 502 with zero partial payload bytes relayed
//
// The run hard-fails unless the warm L1 hit p50 is >= 10x faster than
// the proxied warm-hit p50 and the storm reached the backend exactly
// once.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"eclipse/internal/cluster"
	"eclipse/internal/media"
	"eclipse/internal/serve"
)

func gatewayCacheBench() {
	id := "pr10-gateway-l1"
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("Gateway L1 edge cache bench -> " + path)

	const (
		nBackends  = 3
		nStreams   = 8
		hitReps    = 25 // measured requests per stream per pass
		stormWidth = 32
		backendRTT = 5 * time.Millisecond // simulated gateway<->backend network gap
	)

	// Catalog with offline truth.
	cat := make([]gwStream, nStreams)
	for i := range cat {
		stream := workload(96, 80, 8, 6, int64(i+1))
		ref, err := media.Decode(stream)
		if err != nil {
			fail(err)
		}
		var raw []byte
		for _, f := range ref.DisplayFrames() {
			raw = append(raw, f.Pix...)
		}
		cat[i] = gwStream{stream: stream, wantRaw: raw}
	}

	// Backends, each behind the simulated RTT and a shared media-request
	// counter — the ground truth for "how many requests reached the
	// fleet".
	var backendReqs atomic.Int64
	srvs := make([]*serve.Server, nBackends)
	tss := make([]*httptest.Server, nBackends)
	addrs := make([]string, nBackends)
	for i := 0; i < nBackends; i++ {
		srvs[i] = serve.New(serve.Config{Workers: 2, BaseSlice: 2 * time.Millisecond, QueueCap: 64})
		inner := srvs[i].Handler()
		tss[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				backendReqs.Add(1)
				time.Sleep(backendRTT)
			}
			inner.ServeHTTP(w, r)
		}))
		addrs[i] = tss[i].Listener.Addr().String()
	}
	defer func() {
		for i := range tss {
			tss[i].Close()
		}
	}()

	newGW := func(l1Bytes int64, l1TTL time.Duration) (*cluster.Gateway, *httptest.Server) {
		gw, err := cluster.New(cluster.Config{
			Backends:      addrs,
			ProbeInterval: 20 * time.Millisecond,
			Rise:          2,
			Fall:          2,
			MaxRetries:    2,
			RetryBase:     2 * time.Millisecond,
			HedgeDisabled: true,
			L1Bytes:       l1Bytes,
			L1TTL:         l1TTL,
		})
		if err != nil {
			fail(err)
		}
		gw.Start()
		ts := httptest.NewServer(gw.Handler())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := gw.WaitReady(ctx, nBackends); err != nil {
			fail(err)
		}
		return gw, ts
	}
	gwOff, tsOff := newGW(0, 0)
	gwOn, tsOn := newGW(128<<20, 5*time.Minute)
	defer func() { tsOff.Close(); gwOff.Stop(); tsOn.Close(); gwOn.Stop() }()

	client := &http.Client{Timeout: 60 * time.Second}
	post := func(url string, s gwStream) (time.Duration, []byte, http.Header) {
		start := time.Now()
		resp, err := client.Post(url+"/v1/decode", "application/octet-stream", bytes.NewReader(s.stream))
		if err != nil {
			fail(err)
		}
		el := time.Since(start)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fail(err)
		}
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("gatewaycache bench: status %d from %s: %s",
				resp.StatusCode, resp.Header.Get(cluster.BackendHeader), body))
		}
		if !bytes.Equal(body, s.wantRaw) {
			fail(fmt.Errorf("gatewaycache bench: response differs from offline codec (X-Cache %q)",
				resp.Header.Get(cluster.CacheHeader)))
		}
		return el, body, resp.Header
	}

	// Phase 1: proxied baseline. One warm round fills the backends' own
	// result caches, then every measured request is a two-hop warm hit.
	for _, s := range cat {
		post(tsOff.URL, s)
	}
	proxied := make([]time.Duration, 0, hitReps*nStreams)
	for r := 0; r < hitReps; r++ {
		for _, s := range cat {
			d, _, _ := post(tsOff.URL, s)
			proxied = append(proxied, d)
		}
	}

	// Phase 2: L1 on. One fill round makes the catalog resident; the
	// measured rounds must be answered from gateway memory — byte-equal
	// to the L1-off responses and invisible to the backends.
	for _, s := range cat {
		post(tsOn.URL, s)
	}
	reqsBefore := backendReqs.Load()
	hits := make([]time.Duration, 0, hitReps*nStreams)
	for r := 0; r < hitReps; r++ {
		for _, s := range cat {
			d, _, h := post(tsOn.URL, s)
			hits = append(hits, d)
			if xc := h.Get(cluster.CacheHeader); xc != cluster.XCacheL1Hit {
				fail(fmt.Errorf("gatewaycache bench: warm pass X-Cache %q, want %q", xc, cluster.XCacheL1Hit))
			}
		}
	}
	hitPassBackendReqs := backendReqs.Load() - reqsBefore

	m := gwOn.Metrics()
	l1Hits, l1Misses := m.L1Hits.Load(), m.L1Misses.Load()
	hitRate := float64(l1Hits) / float64(l1Hits+l1Misses)

	// Phase 3: 32-way storm on a cold key — exactly one backend
	// round-trip for the whole burst.
	cold := gwStream{stream: workload(96, 80, 8, 6, 100)}
	ref, err := media.Decode(cold.stream)
	if err != nil {
		fail(err)
	}
	for _, f := range ref.DisplayFrames() {
		cold.wantRaw = append(cold.wantRaw, f.Pix...)
	}
	reqsBefore = backendReqs.Load()
	var wg sync.WaitGroup
	for i := 0; i < stormWidth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(tsOn.URL, cold)
		}()
	}
	wg.Wait()
	stormReqs := backendReqs.Load() - reqsBefore

	// Phase 4: revalidation. A 40ms-TTL gateway re-requests a stale key;
	// the refresh must ride a 304 (no body crosses the gap).
	gwReval, tsReval := newGW(128<<20, 40*time.Millisecond)
	defer func() { tsReval.Close(); gwReval.Stop() }()
	post(tsReval.URL, cat[0])
	time.Sleep(120 * time.Millisecond)
	_, _, h := post(tsReval.URL, cat[0])
	if xc := h.Get(cluster.CacheHeader); xc != cluster.XCacheL1Revalidated {
		fail(fmt.Errorf("gatewaycache bench: stale re-request X-Cache %q, want %q", xc, cluster.XCacheL1Revalidated))
	}
	revals := gwReval.Metrics().L1Revalidations.Load()

	// Phase 5: mid-stream backend death. The buffered proxy must answer
	// a clean 502 with zero partial payload bytes relayed.
	deadMux := http.NewServeMux()
	deadMux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {})
	deadMux.HandleFunc("POST /v1/decode", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Length", "1048576")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial-payload"))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	deadTS := httptest.NewServer(deadMux)
	defer deadTS.Close()
	gwDead, err := cluster.New(cluster.Config{
		Backends:      []string{deadTS.Listener.Addr().String()},
		ProbeInterval: 20 * time.Millisecond,
		Rise:          2,
		Fall:          2,
		MaxRetries:    1,
		RetryBase:     2 * time.Millisecond,
		HedgeDisabled: true,
		L1Bytes:       128 << 20,
	})
	if err != nil {
		fail(err)
	}
	gwDead.Start()
	tsDead := httptest.NewServer(gwDead.Handler())
	defer func() { tsDead.Close(); gwDead.Stop() }()
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := gwDead.WaitReady(ctx, 1)
		cancel()
		if err != nil {
			fail(err)
		}
	}
	resp, err := client.Post(tsDead.URL+"/v1/decode", "application/octet-stream", bytes.NewReader(cat[0].stream))
	if err != nil {
		fail(err)
	}
	deadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		fail(fmt.Errorf("gatewaycache bench: mid-stream death status %d, want 502", resp.StatusCode))
	}
	if bytes.Contains(deadBody, []byte("partial-payload")) {
		fail(fmt.Errorf("gatewaycache bench: partial payload bytes leaked through a 502"))
	}

	entry := kernelBenchEntry{
		GatewayL1HitRate:          hitRate,
		GatewayL1HitP50Ms:         durQuantileMs(hits, 0.50),
		GatewayL1HitP99Ms:         durQuantileMs(hits, 0.99),
		GatewayL1ProxiedP50Ms:     durQuantileMs(proxied, 0.50),
		GatewayL1ProxiedP99Ms:     durQuantileMs(proxied, 0.99),
		GatewayL1Revalidations:    revals,
		GatewayL1BackendReqs:      uint64(hitPassBackendReqs),
		GatewayL1StormWidth:       stormWidth,
		GatewayL1StormBackendReqs: uint64(stormReqs),
	}
	entry.GatewayL1Speedup = entry.GatewayL1ProxiedP50Ms / entry.GatewayL1HitP50Ms

	fmt.Printf("  proxied:  p50 %6.3f ms  p99 %7.3f ms  (L1 off, backend L2 warm, %s simulated RTT)\n",
		entry.GatewayL1ProxiedP50Ms, entry.GatewayL1ProxiedP99Ms, backendRTT)
	fmt.Printf("  l1 hit:   p50 %6.3f ms  p99 %7.3f ms  (%.1fx faster; %d backend requests during %d hits)\n",
		entry.GatewayL1HitP50Ms, entry.GatewayL1HitP99Ms, entry.GatewayL1Speedup, hitPassBackendReqs, len(hits))
	fmt.Printf("  hit rate: %5.1f%% over the L1-on run (%d hits, %d misses)\n", 100*hitRate, l1Hits, l1Misses)
	fmt.Printf("  storm:    %d concurrent on a cold key -> %d backend round-trip(s)\n", stormWidth, stormReqs)
	fmt.Printf("  reval:    %d stale refresh(es) via If-None-Match/304\n", revals)
	fmt.Printf("  death:    mid-stream abort -> 502, zero partial bytes relayed\n")

	if entry.GatewayL1HitP50Ms*10 > entry.GatewayL1ProxiedP50Ms {
		fail(fmt.Errorf("gatewaycache bench: L1 hit p50 %.3fms is not >=10x faster than proxied p50 %.3fms",
			entry.GatewayL1HitP50Ms, entry.GatewayL1ProxiedP50Ms))
	}
	if stormReqs != 1 {
		fail(fmt.Errorf("gatewaycache bench: %d-way storm reached the backend %d times, want exactly 1", stormWidth, stormReqs))
	}
	if hitPassBackendReqs != 0 {
		fail(fmt.Errorf("gatewaycache bench: warm hit pass reached the backend %d times, want 0", hitPassBackendReqs))
	}

	doc := loadKernelBench(path)
	e := benchEntry(&doc, id)
	// Merge: only the gateway_l1_* fields belong to this subcommand;
	// other subsystems' results recorded under the same ID are preserved.
	e.Date = time.Now().Format("2006-01-02")
	e.GatewayL1HitRate = entry.GatewayL1HitRate
	e.GatewayL1HitP50Ms = entry.GatewayL1HitP50Ms
	e.GatewayL1HitP99Ms = entry.GatewayL1HitP99Ms
	e.GatewayL1ProxiedP50Ms = entry.GatewayL1ProxiedP50Ms
	e.GatewayL1ProxiedP99Ms = entry.GatewayL1ProxiedP99Ms
	e.GatewayL1Speedup = entry.GatewayL1Speedup
	e.GatewayL1Revalidations = entry.GatewayL1Revalidations
	e.GatewayL1BackendReqs = entry.GatewayL1BackendReqs
	e.GatewayL1StormWidth = entry.GatewayL1StormWidth
	e.GatewayL1StormBackendReqs = entry.GatewayL1StormBackendReqs
	saveKernelBench(path, &doc)
	fmt.Printf("  wrote entry %q (%d entries total)\n\n", id, len(doc.Entries))

	// Drain the backends so the process exits clean.
	for _, srv := range srvs {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
}
