package main

// Serving-path load generation: `eclipse-bench loadgen [entry-id [path]]`
// boots the eclipse-serve subsystem in-process, drives a mixed
// decode/transcode request stream at a target rate from two tenants of
// unequal weight and unequal decode engines (gold on the
// pipeline-parallel decoder, bronze on the six-task KPN pipeline),
// verifies every 200 response bit-identically against the offline
// codec, and records the serve_* fields of the perf trajectory in
// BENCH_kernel.json (merge-preserving, like the kernel / shell / media
// subcommands).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"eclipse/internal/media"
	"eclipse/internal/serve"
)

// loadgenBench runs the load generator and updates the trajectory file.
func loadgenBench() {
	id := "head-" + time.Now().Format("2006-01-02")
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("Serving-path load generation -> " + path)

	const (
		workers   = 4
		baseSlice = 8 * time.Millisecond
		targetRPS = 100
		duration  = 2 * time.Second
		xcodeQ    = 9
		// Decode-engine split: the interactive tenant decodes on the
		// pipeline-parallel engine (entropy parse overlapped with per-row
		// reconstruction on 4 workers), the bulk tenant stays on the
		// six-task KPN pipeline — exercising both engines concurrently
		// under one scheduler while verifying bit-identical output.
		goldDecodeWorkers   = 4
		bronzeDecodeWorkers = 1
	)

	// Workload and offline ground truth: every server response must be
	// bit-identical to what the batch codec produces for the same input.
	stream := workload(176, 144, 12, 6, 1)
	ref, err := media.Decode(stream)
	if err != nil {
		fail(err)
	}
	var wantRaw []byte
	for _, f := range ref.DisplayFrames() {
		wantRaw = append(wantRaw, f.Pix...)
	}
	wantXcode, _, _, err := media.Encode(serve.TranscodeConfig(ref.Seq, xcodeQ), ref.DisplayFrames())
	if err != nil {
		fail(err)
	}

	srv := serve.New(serve.Config{
		Workers:   workers,
		BaseSlice: baseSlice,
		Tenants: []serve.TenantConfig{
			{Name: "gold", Weight: 2, QueueCap: 16, DecodeWorkers: goldDecodeWorkers},
			{Name: "bronze", Weight: 1, QueueCap: 8, DecodeWorkers: bronzeDecodeWorkers},
		},
	})
	ts := httptest.NewServer(srv.Handler())

	var (
		attempts, completed, rejected, failed, mismatched atomic.Uint64
		wg                                                sync.WaitGroup
	)
	client := &http.Client{Timeout: 30 * time.Second}
	shoot := func(n int) {
		defer wg.Done()
		url := ts.URL + "/v1/decode"
		want := wantRaw
		if n%3 == 2 { // every third request transcodes
			url = fmt.Sprintf("%s/v1/transcode?q=%d", ts.URL, xcodeQ)
			want = wantXcode
		}
		tenant := "gold"
		if n%2 == 1 {
			tenant = "bronze"
		}
		req, err := http.NewRequest("POST", url, bytes.NewReader(stream))
		if err != nil {
			fail(err)
		}
		req.Header.Set("X-Tenant", tenant)
		attempts.Add(1)
		resp, err := client.Do(req)
		if err != nil {
			failed.Add(1)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case err != nil || resp.StatusCode >= 500:
			failed.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
		case resp.StatusCode != http.StatusOK:
			failed.Add(1)
		case !bytes.Equal(body, want):
			mismatched.Add(1)
		default:
			completed.Add(1)
		}
	}

	tick := time.NewTicker(time.Second / targetRPS)
	start := time.Now()
	for n := 0; time.Since(start) < duration; n++ {
		<-tick.C
		wg.Add(1)
		go shoot(n)
	}
	tick.Stop()
	wg.Wait()
	elapsed := time.Since(start)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail(err)
	}
	ts.Close()

	if m := mismatched.Load(); m > 0 {
		fail(fmt.Errorf("loadgen: %d responses differ from the offline codec", m))
	}
	if f := failed.Load(); f > 0 {
		fail(fmt.Errorf("loadgen: %d requests failed", f))
	}
	if completed.Load() == 0 {
		fail(fmt.Errorf("loadgen: no requests completed"))
	}

	met := srv.Metrics()
	msq := func(k serve.Kind, q float64) float64 {
		return float64(met.Latency[k].Quantile(q)) / 1e6
	}
	entryDate := time.Now().Format("2006-01-02")
	doc := loadKernelBench(path)
	e := benchEntry(&doc, id)
	// Merge: only the serve_* fields belong to this subcommand; the
	// decode_*/kernel_*/shell_*/media_* results under the same ID stay.
	e.Date = entryDate
	e.ServeTargetRPS = targetRPS
	e.ServeAchievedRPS = float64(completed.Load()) / elapsed.Seconds()
	e.ServeWorkers = workers
	e.ServeBaseSliceMs = float64(baseSlice) / 1e6
	e.ServeRequests = attempts.Load()
	e.ServeRejectRate = float64(rejected.Load()) / float64(attempts.Load())
	e.ServePreemptions = met.Preemptions.Load()
	e.ServeDecodeP50Ms = msq(serve.KindDecode, 0.50)
	e.ServeDecodeP99Ms = msq(serve.KindDecode, 0.99)
	e.ServeXcodeP50Ms = msq(serve.KindTranscode, 0.50)
	e.ServeXcodeP99Ms = msq(serve.KindTranscode, 0.99)
	saveKernelBench(path, &doc)

	fmt.Printf("  load:    %d requests over %.2fs  (%.1f rps target, %.1f rps served)\n",
		attempts.Load(), elapsed.Seconds(), float64(targetRPS), e.ServeAchievedRPS)
	fmt.Printf("  outcome: %d ok, %d rejected (429), %d failed — all 200s bit-identical to the offline codec\n",
		completed.Load(), rejected.Load(), failed.Load())
	fmt.Printf("  engines: gold decodes with %d workers (pipeline-parallel), bronze with %d (six-task KPN)\n",
		goldDecodeWorkers, bronzeDecodeWorkers)
	fmt.Printf("  decode:  p50 %.2f ms  p99 %.2f ms\n", e.ServeDecodeP50Ms, e.ServeDecodeP99Ms)
	fmt.Printf("  xcode:   p50 %.2f ms  p99 %.2f ms  (%d preemptions across the run)\n",
		e.ServeXcodeP50Ms, e.ServeXcodeP99Ms, e.ServePreemptions)
	fmt.Printf("  wrote entry %q (%d entries total)\n\n", id, len(doc.Entries))
}
