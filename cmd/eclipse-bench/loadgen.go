package main

// Serving-path load generation: `eclipse-bench loadgen [entry-id [path]]`
// boots the eclipse-serve subsystem in-process and drives it through
// three phases:
//
//  1. a zipfian content mix (a few hot streams plus a long tail, the
//     popular-content shape the result cache exists for) from two
//     tenants of unequal weight and unequal decode engines, every 200
//     response verified bit-identically against the offline codec;
//  2. an identical-request storm on a cold key, asserting the
//     singleflight table collapses it to exactly one admitted decode;
//  3. a cache-disabled replay of the catalog, asserting byte-identical
//     responses with the cache on and off;
//  4. a transcode-heavy phase on a longer clip, cache-disabled so every
//     request runs the fused decoder→encoder pipeline end to end:
//     records the fused latency quantiles, the peak in-flight frame
//     gauge (the bounded-memory claim), the handoff stall split, and —
//     via testing.Benchmark over the job objects directly — the per-op
//     wall time and heap traffic of the fused job against the retained
//     two-phase baseline on the same clip;
//  5. the GOP-parallel comparison (see gopbench.go): the same
//     closed-GOP clip transcoded at segment fan-out 1 vs min(NumCPU, 8),
//     outputs verified byte-identical, per-op wall times and the
//     speedup recorded in the transcode_seg_* fields.
//
// The serve_* and transcode_* fields of the perf trajectory (including
// the cache hit/miss latency split) are recorded in BENCH_kernel.json,
// merge-preserving other subsystems' fields.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eclipse/internal/media"
	"eclipse/internal/serve"
)

// loadgenStream is one catalog entry: a bitstream plus its offline
// ground truth for both request kinds.
type loadgenStream struct {
	stream    []byte
	wantRaw   []byte
	wantXcode []byte
}

// buildCatalog encodes nStreams distinct sequences and their reference
// outputs. Index 0 is the zipf head (hottest).
func buildCatalog(nStreams, w, h, frames, q, xcodeQ int) []loadgenStream {
	cat := make([]loadgenStream, nStreams)
	for i := range cat {
		stream := workload(w, h, frames, q, int64(i+1))
		ref, err := media.Decode(stream)
		if err != nil {
			fail(err)
		}
		var raw []byte
		for _, f := range ref.DisplayFrames() {
			raw = append(raw, f.Pix...)
		}
		xcode, _, _, err := media.Encode(serve.TranscodeConfig(ref.Seq, xcodeQ), ref.DisplayFrames())
		if err != nil {
			fail(err)
		}
		cat[i] = loadgenStream{stream: stream, wantRaw: raw, wantXcode: xcode}
	}
	return cat
}

// loadgenBench runs the load generator and updates the trajectory file.
func loadgenBench() {
	id := "head-" + time.Now().Format("2006-01-02")
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("Serving-path load generation -> " + path)

	const (
		workers   = 4
		baseSlice = 8 * time.Millisecond
		targetRPS = 150
		duration  = 2 * time.Second
		xcodeQ    = 9
		nStreams  = 8 // zipf catalog: a hot head and a long tail
		zipfS     = 1.3
		stormN    = 32
		// Decode-engine split: the interactive tenant decodes on the
		// pipeline-parallel engine, the bulk tenant on the six-task KPN
		// pipeline — both engines fill and read the same shared cache,
		// which is sound because output is bit-identical across engines.
		goldDecodeWorkers   = 4
		bronzeDecodeWorkers = 1
	)

	cat := buildCatalog(nStreams, 96, 80, 8, 6, xcodeQ)

	newServer := func(cacheBytes int64) (*serve.Server, *httptest.Server) {
		srv := serve.New(serve.Config{
			Workers:    workers,
			BaseSlice:  baseSlice,
			CacheBytes: cacheBytes,
			Tenants: []serve.TenantConfig{
				{Name: "gold", Weight: 2, QueueCap: 16, DecodeWorkers: goldDecodeWorkers},
				{Name: "bronze", Weight: 1, QueueCap: 8, DecodeWorkers: bronzeDecodeWorkers},
			},
		})
		return srv, httptest.NewServer(srv.Handler())
	}
	drain := func(srv *serve.Server, ts *httptest.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fail(err)
		}
		ts.Close()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	do := func(url, tenant string, body []byte) (int, []byte) {
		req, err := http.NewRequest("POST", url, bytes.NewReader(body))
		if err != nil {
			fail(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, nil
		}
		return resp.StatusCode, out
	}

	// ---- Phase 1: zipfian mix against the cache-enabled server ----
	srv, ts := newServer(0) // 0 = default cache budget
	var (
		attempts, completed, rejected, failed, mismatched atomic.Uint64
		wg                                                sync.WaitGroup
	)
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, zipfS, 1, nStreams-1)
	type shot struct {
		idx    int
		xcode  bool
		tenant string
	}
	shoot := func(sh shot) {
		defer wg.Done()
		s := cat[sh.idx]
		url, want := ts.URL+"/v1/decode", s.wantRaw
		if sh.xcode {
			url, want = fmt.Sprintf("%s/v1/transcode?q=%d", ts.URL, xcodeQ), s.wantXcode
		}
		attempts.Add(1)
		code, body := do(url, sh.tenant, s.stream)
		switch {
		case code == http.StatusTooManyRequests:
			rejected.Add(1)
		case code != http.StatusOK:
			failed.Add(1)
		case !bytes.Equal(body, want):
			mismatched.Add(1)
		default:
			completed.Add(1)
		}
	}
	tick := time.NewTicker(time.Second / targetRPS)
	start := time.Now()
	for n := 0; time.Since(start) < duration; n++ {
		<-tick.C
		sh := shot{idx: int(zipf.Uint64()), xcode: n%3 == 2, tenant: "gold"}
		if n%2 == 1 {
			sh.tenant = "bronze"
		}
		wg.Add(1)
		go shoot(sh)
	}
	tick.Stop()
	wg.Wait()
	elapsed := time.Since(start)
	met := srv.Metrics()
	cacheSnap := srv.Cache().Snapshot()
	preempts := met.Preemptions.Load()
	msq := func(k serve.Kind, q float64) float64 {
		return float64(met.Latency[k].Quantile(q)) / 1e6
	}
	decodeP50, decodeP99 := msq(serve.KindDecode, 0.50), msq(serve.KindDecode, 0.99)
	xcodeP50, xcodeP99 := msq(serve.KindTranscode, 0.50), msq(serve.KindTranscode, 0.99)
	fmt.Printf("  -- drain report --\n")
	drain(srv, ts)
	srv.WriteReport(os.Stdout)

	if m := mismatched.Load(); m > 0 {
		fail(fmt.Errorf("loadgen: %d responses differ from the offline codec", m))
	}
	if f := failed.Load(); f > 0 {
		fail(fmt.Errorf("loadgen: %d requests failed", f))
	}
	if completed.Load() == 0 {
		fail(fmt.Errorf("loadgen: no requests completed"))
	}
	hitTotal := cacheSnap.Hits + cacheSnap.Misses
	hitRate := float64(cacheSnap.Hits) / float64(hitTotal)
	if cacheSnap.Hits == 0 {
		fail(fmt.Errorf("loadgen: zipfian mix produced no cache hits"))
	}
	if cacheSnap.HitP50Ms*10 > cacheSnap.MissP50Ms {
		fail(fmt.Errorf("loadgen: cache hit p50 %.3fms not ≥10x faster than miss p50 %.3fms",
			cacheSnap.HitP50Ms, cacheSnap.MissP50Ms))
	}

	// ---- Phase 2: identical-request storm on a cold key ----
	storm := workload(96, 80, 8, 6, 99)
	stormSrv, stormTS := newServer(0)
	var stormWG sync.WaitGroup
	var stormFail atomic.Uint64
	for i := 0; i < stormN; i++ {
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			code, _ := do(stormTS.URL+"/v1/decode", "gold", storm)
			if code != http.StatusOK {
				stormFail.Add(1)
			}
		}()
	}
	stormWG.Wait()
	stormDecodes := stormSrv.Metrics().Requests[serve.KindDecode].Load()
	stormSnap := stormSrv.Cache().Snapshot()
	drain(stormSrv, stormTS)
	if stormFail.Load() > 0 {
		fail(fmt.Errorf("loadgen: %d storm requests failed", stormFail.Load()))
	}
	if stormDecodes != 1 {
		fail(fmt.Errorf("loadgen: %d-request storm admitted %d decodes, want exactly 1", stormN, stormDecodes))
	}

	// ---- Phase 3: cache-off replay, byte-identity across the switch ----
	offSrv, offTS := newServer(-1)
	for i, s := range cat {
		if code, body := do(offTS.URL+"/v1/decode", "gold", s.stream); code != http.StatusOK || !bytes.Equal(body, s.wantRaw) {
			fail(fmt.Errorf("loadgen: cache-off decode of stream %d diverged (status %d)", i, code))
		}
		if code, body := do(fmt.Sprintf("%s/v1/transcode?q=%d", offTS.URL, xcodeQ), "bronze", s.stream); code != http.StatusOK || !bytes.Equal(body, s.wantXcode) {
			fail(fmt.Errorf("loadgen: cache-off transcode of stream %d diverged (status %d)", i, code))
		}
	}
	drain(offSrv, offTS)

	// ---- Phase 4: transcode-heavy, cache-disabled (fused pipeline) ----
	const (
		xcodeClipFrames = 24
		xcodeShots      = 24
	)
	xcodeClip := workload(176, 144, xcodeClipFrames, 6, 7)
	xcodeRef, err := media.Decode(xcodeClip)
	if err != nil {
		fail(err)
	}
	xcodeWant, _, _, err := media.Encode(serve.TranscodeConfig(xcodeRef.Seq, xcodeQ), xcodeRef.DisplayFrames())
	if err != nil {
		fail(err)
	}
	xSrv, xTS := newServer(-1) // cache off: every request runs the pipeline
	var xWG sync.WaitGroup
	var xFail atomic.Uint64
	for i := 0; i < xcodeShots; i++ {
		xWG.Add(1)
		tenant := "gold"
		if i%2 == 1 {
			tenant = "bronze"
		}
		go func(tenant string) {
			defer xWG.Done()
			// The burst intentionally exceeds the admission bounds; retry
			// 429s so every shot eventually verifies the fused output.
			for {
				code, body := do(fmt.Sprintf("%s/v1/transcode?q=%d", xTS.URL, xcodeQ), tenant, xcodeClip)
				if code == http.StatusTooManyRequests {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if code != http.StatusOK || !bytes.Equal(body, xcodeWant) {
					xFail.Add(1)
				}
				return
			}
		}(tenant)
	}
	xWG.Wait()
	xMet := xSrv.Metrics()
	fusedP50 := float64(xMet.Latency[serve.KindTranscode].Quantile(0.50)) / 1e6
	fusedP99 := float64(xMet.Latency[serve.KindTranscode].Quantile(0.99)) / 1e6
	xPeak := xMet.XcodePeakFrames.Load()
	xPush, xPull := xMet.XcodePushStalls.Load(), xMet.XcodePullStalls.Load()
	drain(xSrv, xTS)
	if xFail.Load() > 0 {
		fail(fmt.Errorf("loadgen: %d fused transcode responses failed or diverged", xFail.Load()))
	}
	if xPeak <= 0 || xPeak >= int64(xcodeClipFrames) {
		fail(fmt.Errorf("loadgen: fused peak in-flight frames %d not GOP-bounded for a %d-frame clip",
			xPeak, xcodeClipFrames))
	}

	// Per-op cost of the job objects themselves (no HTTP, no scheduler
	// contention): fused vs the retained two-phase baseline. Warm-up
	// iterations populate the frame pool and code caches, then a fixed
	// iteration count is measured with explicit GC fences so the two
	// variants see the same heap state regardless of the phases above.
	const (
		benchWarmup = 2
		benchIters  = 10
	)
	benchSched := serve.NewScheduler(serve.Config{Workers: 1, BaseSlice: time.Minute, QueueCap: 64}, serve.NewMetrics())
	type perOp struct{ msPerOp, bytesPerOp float64 }
	benchJob := func(mk func(pool *media.SyncFramePool) (*serve.Job, error)) perOp {
		// A fresh pool per op makes the job provision its own in-flight
		// frames, so bytes/op reflects the pipeline's working set (the
		// quantity fusion bounds) rather than a warm pool's steady state.
		run := func() {
			pool := media.NewSyncFramePool(64)
			j, err := mk(pool)
			if err != nil {
				fail(err)
			}
			if err := benchSched.Submit(j); err != nil {
				fail(err)
			}
			<-j.Done()
			if _, err := j.Result(); err != nil {
				fail(err)
			}
		}
		for i := 0; i < benchWarmup; i++ {
			run()
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < benchIters; i++ {
			run()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return perOp{
			msPerOp:    float64(elapsed) / 1e6 / benchIters,
			bytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / benchIters,
		}
	}
	fusedRes := benchJob(func(pool *media.SyncFramePool) (*serve.Job, error) {
		return serve.NewTranscodeJob(context.Background(), "bench", xcodeClip, xcodeQ, pool,
			goldDecodeWorkers, 0, nil)
	})
	twoPhaseRes := benchJob(func(pool *media.SyncFramePool) (*serve.Job, error) {
		return serve.NewTranscodeJobTwoPhase(context.Background(), "bench", xcodeClip, xcodeQ, pool,
			goldDecodeWorkers, 0)
	})
	if err := benchSched.Drain(context.Background()); err != nil {
		fail(err)
	}

	// ---- Phase 5: GOP-parallel transcode, segments 1 vs K ----
	var segEntry kernelBenchEntry
	measureGopParallel(&segEntry)

	entryDate := time.Now().Format("2006-01-02")
	doc := loadKernelBench(path)
	e := benchEntry(&doc, id)
	// Merge: only the serve_* fields belong to this subcommand; the
	// decode_*/kernel_*/shell_*/media_* results under the same ID stay.
	e.Date = entryDate
	e.ServeTargetRPS = targetRPS
	e.ServeAchievedRPS = float64(completed.Load()) / elapsed.Seconds()
	e.ServeWorkers = workers
	e.ServeBaseSliceMs = float64(baseSlice) / 1e6
	e.ServeRequests = attempts.Load()
	e.ServeRejectRate = float64(rejected.Load()) / float64(attempts.Load())
	e.ServePreemptions = preempts
	e.ServeDecodeP50Ms = decodeP50
	e.ServeDecodeP99Ms = decodeP99
	e.ServeXcodeP50Ms = xcodeP50
	e.ServeXcodeP99Ms = xcodeP99
	e.ServeCacheHitRate = hitRate
	// Collapses counted across the zipf mix and the storm phase: the
	// paced mix rarely overlaps misses, the storm always does.
	e.ServeCacheCollapsed = cacheSnap.Collapsed + stormSnap.Collapsed
	e.ServeCacheHitP50Ms = cacheSnap.HitP50Ms
	e.ServeCacheHitP99Ms = cacheSnap.HitP99Ms
	e.ServeCacheMissP50Ms = cacheSnap.MissP50Ms
	e.ServeCacheMissP99Ms = cacheSnap.MissP99Ms
	e.XcodeP50Ms = fusedP50
	e.XcodeP99Ms = fusedP99
	e.XcodePeakFrames = xPeak
	e.XcodeClipFrames = xcodeClipFrames
	e.XcodeBytesPerOp = fusedRes.bytesPerOp
	e.XcodeMsPerOp = fusedRes.msPerOp
	e.XcodeTwoPhaseBytesOp = twoPhaseRes.bytesPerOp
	e.XcodeTwoPhaseMsPerOp = twoPhaseRes.msPerOp
	e.XcodePushStalls = xPush
	e.XcodePullStalls = xPull
	e.XcodeSegMsPerOp = segEntry.XcodeSegMsPerOp
	e.XcodeSeg1MsPerOp = segEntry.XcodeSeg1MsPerOp
	e.XcodeSegSpeedup = segEntry.XcodeSegSpeedup
	e.XcodeSegSegments = segEntry.XcodeSegSegments
	e.XcodeSegClipFrames = segEntry.XcodeSegClipFrames
	e.XcodeSegPeakFrames = segEntry.XcodeSegPeakFrames
	e.XcodeSegSkewMs = segEntry.XcodeSegSkewMs
	e.XcodeSegNumCPU = segEntry.XcodeSegNumCPU
	saveKernelBench(path, &doc)

	fmt.Printf("  load:    %d requests over %.2fs  (%.1f rps target, %.1f rps served; zipf s=%.1f over %d streams)\n",
		attempts.Load(), elapsed.Seconds(), float64(targetRPS), e.ServeAchievedRPS, zipfS, nStreams)
	fmt.Printf("  outcome: %d ok, %d rejected (429), %d failed — all 200s bit-identical to the offline codec\n",
		completed.Load(), rejected.Load(), failed.Load())
	fmt.Printf("  cache:   %.1f%% hit rate (%d/%d), %d collapsed, hit p50 %.3f ms vs miss p50 %.2f ms\n",
		hitRate*100, cacheSnap.Hits, hitTotal, cacheSnap.Collapsed, cacheSnap.HitP50Ms, cacheSnap.MissP50Ms)
	fmt.Printf("  storm:   %d identical requests -> %d admitted decode (%d collapsed, %d late hits)\n",
		stormN, stormDecodes, stormSnap.Collapsed, stormSnap.Hits)
	fmt.Printf("  decode:  p50 %.2f ms  p99 %.2f ms\n", decodeP50, decodeP99)
	fmt.Printf("  xcode:   p50 %.2f ms  p99 %.2f ms  (%d preemptions across the run)\n",
		xcodeP50, xcodeP99, preempts)
	fmt.Printf("  fused:   p50 %.2f ms  p99 %.2f ms over %d cache-off transcodes of a %d-frame clip\n",
		fusedP50, fusedP99, xcodeShots, xcodeClipFrames)
	fmt.Printf("           peak %d frames in flight (stalls: %d push / %d pull)\n", xPeak, xPush, xPull)
	fmt.Printf("  per-op:  fused %.2f ms, %.1f KiB  vs  two-phase %.2f ms, %.1f KiB\n",
		e.XcodeMsPerOp, e.XcodeBytesPerOp/1024, e.XcodeTwoPhaseMsPerOp, e.XcodeTwoPhaseBytesOp/1024)
	fmt.Printf("  wrote entry %q (%d entries total)\n\n", id, len(doc.Entries))
}
