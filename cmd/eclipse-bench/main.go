// Command eclipse-bench regenerates every experiment of the paper's
// evaluation (see EXPERIMENTS.md for the index) and prints the tables and
// ASCII figures. Subcommands:
//
//	fig10       Figure 10: stream-buffer filling & bottleneck rotation
//	fig9        Figure 9: utilization / application performance views
//	mapping     Figures 2/3: graph construction and mapping report
//	instance    Section 6: dual decode & transcode on the Fig. 8 instance
//	cachesweep  Section 7: shell cache size sweep
//	prefetch    Section 7: prefetching on/off/depth
//	bussweep    Section 7: stream-bus width and latency sweeps
//	schedsweep  Section 5.3: scheduler policy and budget sweep
//	coupling    Section 2.2: sync granularity vs buffer size
//	buffers     Section 2.2: decode buffer sizing sweep
//	throughput  Section 6: ops/cycle proxy and bus utilization
//	pipelined   Section 7 follow-up: pipelined DCT ablation
//	kernel      engine wall-clock speed; updates BENCH_kernel.json
//	shell       shell-transport wall-clock speed; updates BENCH_kernel.json
//	media       codec-kernel wall-clock speed; updates BENCH_kernel.json
//	loadgen     serving-path load generation; updates BENCH_kernel.json
//	gop         GOP-parallel transcode, segments 1 vs K; updates BENCH_kernel.json
//	gateway     cluster gateway affinity/hedging/failover; updates BENCH_kernel.json
//	gatewaycache  gateway L1 edge cache hit/storm/revalidation; updates BENCH_kernel.json
//	all         everything above except the BENCH_kernel.json writers
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"eclipse"
	"eclipse/internal/media"
	"eclipse/internal/trace"
	"eclipse/internal/viz"
)

func main() {
	cmd := "all"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	cmds := map[string]func(){
		"fig10":        fig10,
		"fig9":         fig9,
		"mapping":      mapping,
		"instance":     instance,
		"cachesweep":   cacheSweep,
		"prefetch":     prefetchSweep,
		"bussweep":     busSweep,
		"schedsweep":   schedSweep,
		"coupling":     coupling,
		"buffers":      buffers,
		"throughput":   throughput,
		"pipelined":    pipelined,
		"memorg":       memorg,
		"kernel":       kernelBench,
		"shell":        shellBench,
		"media":        mediaBench,
		"loadgen":      loadgenBench,
		"gop":          gopBench,
		"gateway":      gatewayBench,
		"gatewaycache": gatewayCacheBench,
	}
	if cmd == "all" {
		order := []string{"fig10", "fig9", "mapping", "instance", "cachesweep",
			"prefetch", "bussweep", "schedsweep", "coupling", "buffers",
			"throughput", "pipelined", "memorg"}
		for _, c := range order {
			cmds[c]()
		}
		return
	}
	fn, ok := cmds[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "eclipse-bench: unknown command %q\n", cmd)
		os.Exit(2)
	}
	fn()
}

func header(title string) {
	fmt.Printf("\n==================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("==================================================================\n\n")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "eclipse-bench:", err)
	os.Exit(1)
}

// workload returns a deterministic test stream.
func workload(w, h, frames, q int, seed int64) []byte {
	src := media.DefaultSource(w, h)
	src.Seed = seed
	fr := media.NewSource(src).Frames(frames)
	cfg := media.DefaultCodec(w, h)
	cfg.Q = q
	stream, _, _, err := media.Encode(cfg, fr)
	if err != nil {
		fail(err)
	}
	return stream
}

func fig10() {
	header("E1 — Figure 10: available data in RLSQ/DCT/MC input streams")
	res, err := eclipse.RunFig10(eclipse.DefaultFig10())
	if err != nil {
		fail(err)
	}
	// GOP annotation along the time axis, like the paper's figure top row.
	var annot strings.Builder
	for _, w := range res.Windows {
		frac := float64(w.End-w.Start) / float64(res.Cycles)
		n := int(frac * 72)
		if n < 1 {
			n = 1
		}
		annot.WriteString(w.Type.String())
		annot.WriteString(strings.Repeat(".", n-1))
	}
	chart := viz.DefaultChart()
	panels := []string{"rlsq", "dct", "mc"}
	for i, stage := range panels {
		a := ""
		if i == 0 {
			a = annot.String()
		}
		fmt.Print(chart.Render(res.Collector.Series("dec/"+stage+".in"), a))
		fmt.Println()
	}
	fmt.Printf("per-frame bottleneck analysis (window = coded frame interval):\n")
	for _, w := range res.Windows {
		fmt.Printf("  coded %2d  %v  rlsq %.2f  dct %.2f  mc %.2f  -> %s\n",
			w.Coded, w.Type, w.MeanFill["rlsq"], w.MeanFill["dct"], w.MeanFill["mc"], w.Bottleneck)
	}
	fmt.Printf("\nmajority bottleneck:  I -> %s   P -> %s   B -> %s\n",
		res.MajorityBottleneck(media.FrameI),
		res.MajorityBottleneck(media.FrameP),
		res.MajorityBottleneck(media.FrameB))
	fmt.Printf("(paper: I -> rlsq, P -> dct, B -> mc)\n")
}

func fig9() {
	header("E2 — Figure 9: performance visualization (architecture + application views)")
	sys, apps, err := eclipse.LoadSetupString(eclipse.ExampleSetup)
	if err != nil {
		fail(err)
	}
	if _, err := sys.Run(0); err != nil {
		fail(err)
	}
	for _, app := range apps {
		if err := app.Verify(); err != nil {
			fail(err)
		}
	}
	sys.WriteReport(os.Stdout)
	fmt.Println()
	if err := sys.ChartSeries(os.Stdout, "dec0/rlsq.in", "stream buffer filling, RLSQ input"); err != nil {
		fail(err)
	}
}

func mapping() {
	header("E3 — Figures 2/3: process networks and application-to-architecture mapping")
	dg := eclipse.DecodeGraph("dec", eclipse.DefaultDecodeBuffers())
	fmt.Print(dg.String())
	fmt.Println()
	eg := eclipse.EncodeGraph("enc", eclipse.DefaultEncodeBuffers())
	fmt.Print(eg.String())
	fmt.Println("decode mapping:", fmtMap(eclipse.DefaultDecodeMapping))
	fmt.Println("encode mapping:", fmtMap(eclipse.DefaultEncodeMapping))
}

func fmtMap(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"->"+m[k])
	}
	return strings.Join(parts, "  ")
}

func instance() {
	header("E4 — Section 6: the Figure 8 instance under multi-application load")
	a := workload(96, 80, 8, 6, 2)
	b := workload(96, 80, 8, 10, 3)

	fmt.Println("dual simultaneous decode:")
	sys := eclipse.NewSystem(eclipse.Fig8())
	appA, err := sys.AddDecodeApp("a", a, eclipse.DecodeOptions{})
	if err != nil {
		fail(err)
	}
	appB, err := sys.AddDecodeApp("b", b, eclipse.DecodeOptions{})
	if err != nil {
		fail(err)
	}
	cycles, err := sys.Run(0)
	if err != nil {
		fail(err)
	}
	if err := appA.VerifyAgainstReference(a); err != nil {
		fail(err)
	}
	if err := appB.VerifyAgainstReference(b); err != nil {
		fail(err)
	}
	var switches, steps, denied uint64
	for _, app := range []string{"a", "b"} {
		for _, task := range []string{"vld", "rlsq", "idct", "mc"} {
			st, _ := sys.TaskStats(app + "-" + task)
			switches += st.Switches
			steps += st.Steps
			denied += st.DeniedSteps
		}
	}
	sec := float64(cycles) / 150e6
	fmt.Printf("  %d cycles (%0.2f ms at 150 MHz); %d coprocessor steps, %d switches\n",
		cycles, sec*1e3, steps, switches)
	fmt.Printf("  task switch rate %.0f kHz, processing step rate %.0f kHz (paper: 10-100 kHz switches)\n",
		float64(switches)/sec/1e3, float64(steps)/sec/1e3)
	for _, u := range sys.Utilizations() {
		fmt.Printf("  %-5s %5.1f%% busy\n", u.Name, u.Busy*100)
	}
	fmt.Println("  shell caches (read hit rate, write-backs, evictions):")
	names := sys.CoproNames()
	sort.Strings(names)
	for _, n := range names {
		sh := sys.Shell(n)
		r, w := sh.ReadCacheStats(), sh.WriteCacheStats()
		fmt.Printf("  %-5s read %5.1f%% hit (%d/%d)  flushes %d  evictions %d\n",
			n, r.HitRate()*100, r.Hits, r.Accesses(), w.Flushes, r.Evictions+w.Evictions)
	}

	fmt.Println("\nsimultaneous encode + decode (time-shift):")
	src := media.DefaultSource(96, 80)
	src.Seed = 4
	encFrames := media.NewSource(src).Frames(8)
	encCfg := media.DefaultCodec(96, 80)
	sys2 := eclipse.NewSystem(eclipse.Fig8())
	dec, err := sys2.AddDecodeApp("d", a, eclipse.DecodeOptions{})
	if err != nil {
		fail(err)
	}
	enc, err := sys2.AddEncodeApp("e", encCfg, encFrames, eclipse.EncodeOptions{})
	if err != nil {
		fail(err)
	}
	cycles2, err := sys2.Run(0)
	if err != nil {
		fail(err)
	}
	if err := dec.VerifyAgainstReference(a); err != nil {
		fail(err)
	}
	if err := enc.VerifyAgainstReference(encCfg, encFrames); err != nil {
		fail(err)
	}
	fmt.Printf("  %d cycles; both outputs bit-exact with their references\n", cycles2)
	for _, u := range sys2.Utilizations() {
		fmt.Printf("  %-5s %5.1f%% busy\n", u.Name, u.Busy*100)
	}
}

func sweepTable(title string, pts []eclipse.SweepPoint) {
	fmt.Printf("%s\n", title)
	var base uint64
	for _, p := range pts {
		if p.Extra["failed"] != 1 {
			base = p.Cycles
			break
		}
	}
	if base == 0 {
		base = 1
	}
	for _, p := range pts {
		extra := ""
		keys := make([]string, 0, len(p.Extra))
		for k := range p.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			extra += fmt.Sprintf("  %s=%.3f", k, p.Extra[k])
		}
		if p.Extra["failed"] == 1 {
			fmt.Printf("  %-16s %12s%s\n", p.Label, "FAILED", extra)
			continue
		}
		fmt.Printf("  %-16s %12d cycles  (%.2fx)%s\n", p.Label, p.Cycles,
			float64(p.Cycles)/float64(base), extra)
	}
	fmt.Println()
}

func cacheSweep() {
	header("E5 — Section 7: shell data cache size sweep")
	pts, err := eclipse.RunCacheSweep(workload(96, 80, 8, 6, 2), []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		fail(err)
	}
	sweepTable("decode time vs cache capacity (read+write lines per shell):", pts)
}

func prefetchSweep() {
	header("E6 — Section 7: cache prefetching or not")
	pts, err := eclipse.RunPrefetchSweep(workload(96, 80, 8, 6, 2), []int{0, 1, 2, 4, 8})
	if err != nil {
		fail(err)
	}
	sweepTable("decode time vs prefetch depth (lines ahead; 0 = off):", pts)
}

func busSweep() {
	header("E7 — Section 7: stream bus width and latency")
	stream := workload(96, 80, 8, 6, 2)
	pts, err := eclipse.RunBusWidthSweep(stream, []int{4, 8, 16, 32})
	if err != nil {
		fail(err)
	}
	sweepTable("decode time vs data path width:", pts)
	pts, err = eclipse.RunBusLatencySweep(stream, []uint64{1, 2, 4, 8, 16})
	if err != nil {
		fail(err)
	}
	sweepTable("decode time vs stream memory latency:", pts)
}

func schedSweep() {
	header("E8 — Section 5.3: distributed weighted-round-robin scheduler")
	a := workload(96, 80, 6, 6, 2)
	b := workload(96, 80, 6, 10, 3)
	fmt.Println("policy ablation (dual decode):")
	for _, naive := range []bool{false, true} {
		res, err := eclipse.RunSchedulerExperiment(a, b, naive, 2000)
		if err != nil {
			fail(err)
		}
		name := "best-guess"
		if naive {
			name = "naive RR"
		}
		fmt.Printf("  %-11s %10d cycles  %6.1f%% wasted steps  %6d switches\n",
			name, res.Cycles, float64(res.DeniedSteps)/float64(res.Steps)*100, res.Switches)
	}
	fmt.Println("\nbudget sweep (best-guess policy):")
	for _, budget := range []uint64{500, 1000, 2000, 5000, 10000} {
		res, err := eclipse.RunSchedulerExperiment(a, b, false, budget)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  budget %6d %10d cycles  %6d switches\n", budget, res.Cycles, res.Switches)
	}
	fmt.Println()
}

func coupling() {
	header("E9a — Section 2.2: synchronization granularity vs buffer size")
	pts, err := eclipse.RunCouplingExperiment(16384, []int{8, 16, 64, 256, 1024}, []int{64, 256, 1024})
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %-8s", "grain\\buf")
	for _, b := range []int{64, 256, 1024} {
		fmt.Printf(" %14d", b)
	}
	fmt.Println()
	byKey := map[[2]int]eclipse.CouplingPoint{}
	for _, p := range pts {
		byKey[[2]int{p.Grain, p.BufBytes}] = p
	}
	for _, g := range []int{8, 16, 64, 256, 1024} {
		fmt.Printf("  %-8d", g)
		for _, b := range []int{64, 256, 1024} {
			p := byKey[[2]int{g, b}]
			if p.Deadlock {
				fmt.Printf(" %14s", "deadlock")
			} else {
				fmt.Printf(" %8d cyc", p.Cycles)
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(finer sync grain lets smaller buffers work; coarser grain needs fewer putspace messages)")
}

func buffers() {
	header("E9b — Section 2.2: decode stream-buffer sizing")
	pts, err := eclipse.RunBufferScaleSweep(workload(96, 80, 8, 6, 2), []float64{0.05, 0.25, 0.5, 1, 2, 4})
	if err != nil {
		fail(err)
	}
	sweepTable("decode time vs buffer scale (1x = defaults):", pts)
}

func throughput() {
	header("E10 — Section 6: throughput proxy (ops/cycle) and bus load")
	a := workload(96, 80, 8, 6, 2)
	b := workload(96, 80, 8, 10, 3)
	r, err := eclipse.RunThroughput(a, b)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  dual decode: %d cycles, %d estimated 16-bit ops\n", r.Cycles, r.Ops)
	fmt.Printf("  %.1f ops/cycle  ->  %.2f Gops at the paper's 150 MHz clock\n", r.OpsPerCycle, r.GopsAt150MHz)
	fmt.Printf("  stream bus utilization: read %.1f%%, write %.1f%%\n",
		r.BusReadUtil*100, r.BusWriteUtil*100)
	fmt.Printf("  (paper claims 36 Gops for dual HD decode; our workload is sub-SD,\n")
	fmt.Printf("   so the comparison point is ops-per-cycle scaling, not the absolute figure)\n")
}

func pipelined() {
	header("Ablation — Section 7 follow-up: pipelining the DCT coprocessor")
	stream := workload(176, 144, 10, 6, 1)
	for _, pipe := range []bool{false, true} {
		arch := eclipse.Fig8()
		arch.Costs.DCTPipelined = pipe
		sys := eclipse.NewSystem(arch)
		app, err := sys.AddDecodeApp("dec", stream, eclipse.DecodeOptions{})
		if err != nil {
			fail(err)
		}
		cycles, err := sys.Run(0)
		if err != nil {
			fail(err)
		}
		if err := app.VerifyAgainstReference(stream); err != nil {
			fail(err)
		}
		name := "baseline DCT "
		if pipe {
			name = "pipelined DCT"
		}
		fmt.Printf("  %s %10d cycles\n", name, cycles)
	}
	fmt.Println()
}

func memorg() {
	header("E11 — Section 6 tradeoff: centralized vs distributed stream memory")
	pts, err := eclipse.RunMemoryOrganization(workload(96, 80, 8, 6, 2))
	if err != nil {
		fail(err)
	}
	sweepTable("decode time by communication-memory organization:", pts)
	fmt.Println("(distributed banks remove cross-stream bus contention and the 32 kB")
	fmt.Println(" capacity wall, at the cost of run-time buffer allocation flexibility)")
}

var _ = trace.Series{} // keep the import for future chart use
