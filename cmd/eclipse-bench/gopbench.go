package main

// GOP-parallel transcode benchmark: `eclipse-bench gop [entry-id [path]]`
// measures the segment-parallel transcode engine against the fused
// serial pipeline on the same closed-GOP clip and records the
// transcode_seg_* fields of BENCH_kernel.json. The same measurement
// runs as loadgen phase 5, so `loadgen` entries carry it too.
//
// Both variants run with decode and encode workers pinned to 1, so the
// only difference is the segment fan-out: K=1 takes the fused fallback
// (one serial decode→encode pipeline), K=min(NumCPU, 8) runs K
// independent pipelines over closed-GOP cuts and stitches the
// bitstreams. Outputs of both are verified byte-identical to the
// offline batch transcode before any number is recorded.
//
// CAVEAT: the speedup is a multi-core number. On a single-CPU host the
// segmented path is the same serial work plus a GOP-indexing pass, so
// expect ~1.0x or slightly below; transcode_seg_num_cpu records the
// machine so trajectory readers can tell the two regimes apart.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"eclipse/internal/media"
	"eclipse/internal/serve"
)

// gopClip encodes the benchmark clip: N=13, M=3 makes every GOP
// boundary a closed cut ((N-1)%M == 0), so a K-way split is available.
func gopClip(w, h, frames, q int, seed int64) []byte {
	src := media.DefaultSource(w, h)
	src.Seed = seed
	fr := media.NewSource(src).Frames(frames)
	cfg := media.DefaultCodec(w, h)
	cfg.Q = q
	cfg.GOPN = 13
	cfg.GOPM = 3
	stream, _, _, err := media.Encode(cfg, fr)
	if err != nil {
		fail(err)
	}
	return stream
}

// measureGopParallel fills the transcode_seg_* fields and prints the
// comparison. Shared by the `gop` subcommand and loadgen phase 5.
func measureGopParallel(e *kernelBenchEntry) {
	const (
		clipFrames = 52 // four closed GOPs of 13
		xcodeQ     = 9
		warmup     = 1
		iters      = 5
	)
	segments := runtime.NumCPU()
	if segments > 8 {
		segments = 8
	}
	if segments < 2 {
		segments = 2 // still exercises the segmented path on 1 CPU
	}
	clip := gopClip(176, 144, clipFrames, 6, 5)
	ref, err := media.Decode(clip)
	if err != nil {
		fail(err)
	}
	want, _, _, err := media.Encode(serve.TranscodeConfig(ref.Seq, xcodeQ), ref.DisplayFrames())
	if err != nil {
		fail(err)
	}

	sched := serve.NewScheduler(serve.Config{Workers: 1, BaseSlice: time.Minute, QueueCap: 64}, serve.NewMetrics())
	defer sched.Drain(context.Background())
	met := serve.NewMetrics()
	runOnce := func(segs int) time.Duration {
		pool := media.NewSyncFramePool(128)
		j, err := serve.NewTranscodeJobSegmented(context.Background(), "bench", clip, xcodeQ,
			pool, 1, 1, segs, met)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		if err := sched.Submit(j); err != nil {
			fail(err)
		}
		<-j.Done()
		wall := time.Since(start)
		res, err := j.Result()
		if err != nil {
			fail(err)
		}
		if !bytes.Equal(res.Body, want) {
			fail(fmt.Errorf("gop: k=%d output differs from the offline transcode (%d vs %d bytes)",
				segs, len(res.Body), len(want)))
		}
		if n := pool.Outstanding(); n != 0 {
			fail(fmt.Errorf("gop: k=%d leaked %d pooled frames", segs, n))
		}
		return wall
	}
	bench := func(segs int) float64 {
		for i := 0; i < warmup; i++ {
			runOnce(segs)
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < iters; i++ {
			if w := runOnce(segs); w < best {
				best = w
			}
		}
		return float64(best) / 1e6
	}

	serialMs := bench(1)
	segMs := bench(segments)

	e.XcodeSegMsPerOp = segMs
	e.XcodeSeg1MsPerOp = serialMs
	e.XcodeSegSpeedup = serialMs / segMs
	e.XcodeSegSegments = segments
	e.XcodeSegClipFrames = clipFrames
	e.XcodeSegPeakFrames = met.XcodePeakFrames.Load()
	e.XcodeSegSkewMs = float64(met.XcodeSegSkewNs.Load()) / 1e6
	e.XcodeSegNumCPU = runtime.NumCPU()

	fmt.Printf("  gop:     k=1 %.2f ms/op  vs  k=%d %.2f ms/op  (%.2fx, %d CPUs)\n",
		serialMs, segments, segMs, e.XcodeSegSpeedup, e.XcodeSegNumCPU)
	fmt.Printf("           %d-frame clip, peak %d frames in flight, segment skew %.2f ms\n",
		clipFrames, e.XcodeSegPeakFrames, e.XcodeSegSkewMs)
	if e.XcodeSegNumCPU < 2 {
		fmt.Printf("           CAVEAT: single-CPU host — segmented == serial work + indexing, speedup not meaningful\n")
	} else if e.XcodeSegNumCPU >= 4 && e.XcodeSegSpeedup < 1.0 {
		fail(fmt.Errorf("gop: k=%d slower than k=1 on a %d-CPU host (%.2fx)",
			segments, e.XcodeSegNumCPU, e.XcodeSegSpeedup))
	}
}

// gopBench runs the GOP-parallel measurement standalone and updates the
// trajectory file.
func gopBench() {
	id := "head-" + time.Now().Format("2006-01-02")
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("GOP-parallel transcode (segments 1 vs K) -> " + path)

	var entry kernelBenchEntry
	measureGopParallel(&entry)

	doc := loadKernelBench(path)
	e := benchEntry(&doc, id)
	// Merge: only the transcode_seg_* fields belong to this subcommand.
	e.Date = time.Now().Format("2006-01-02")
	e.XcodeSegMsPerOp = entry.XcodeSegMsPerOp
	e.XcodeSeg1MsPerOp = entry.XcodeSeg1MsPerOp
	e.XcodeSegSpeedup = entry.XcodeSegSpeedup
	e.XcodeSegSegments = entry.XcodeSegSegments
	e.XcodeSegClipFrames = entry.XcodeSegClipFrames
	e.XcodeSegPeakFrames = entry.XcodeSegPeakFrames
	e.XcodeSegSkewMs = entry.XcodeSegSkewMs
	e.XcodeSegNumCPU = entry.XcodeSegNumCPU
	saveKernelBench(path, &doc)
	fmt.Printf("  wrote entry %q (%d entries total)\n\n", id, len(doc.Entries))
}
