package main

// Shell transport speed: `eclipse-bench shell [entry-id [path]]` measures
// the wall-clock cost of the coprocessor-shell data transport (cache-hit
// reads/writes, demand misses, flushes, putspace messaging) with a
// producer/consumer pair streaming through a fabric, and merges the
// shell_* fields into the matching BENCH_kernel.json entry so the
// transport trajectory lives alongside the engine trajectory.

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"eclipse/internal/mem"
	"eclipse/internal/shell"
	"eclipse/internal/sim"
)

// shellBenchResult is one measurement of the transport stress.
type shellBenchResult struct {
	bytesMoved uint64
	wall       time.Duration
	allocs     uint64
	readHit    float64
	writeHit   float64
}

// runShellStress streams total bytes producer->consumer through a fabric
// with the default shell configuration (prefetch on), reading in line-
// sized pieces so the read cache and prefetcher both participate.
func runShellStress(total int) (shellBenchResult, error) {
	var r shellBenchResult
	k := sim.NewKernel()
	f := shell.NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	pSh := f.NewShell(shell.DefaultConfig("p"))
	cSh := f.NewShell(shell.DefaultConfig("c"))
	pT := pSh.AddTask("prod", 0, 0)
	cT := cSh.AddTask("cons", 0, 0)
	err := f.Connect(
		shell.Endpoint{Shell: pSh, Task: pT, Port: 0},
		[]shell.Endpoint{{Shell: cSh, Task: cT, Port: 0}},
		1024,
	)
	if err != nil {
		return r, err
	}
	k.NewProc("prod", 0, func(p *sim.Proc) {
		pSh.Bind(p)
		data := make([]byte, 256)
		sent := 0
		for sent < total {
			task, _, ok := pSh.GetTask()
			if !ok {
				return
			}
			if !pSh.GetSpace(task, 0, 256) {
				continue
			}
			pSh.Write(task, 0, 0, data)
			pSh.PutSpace(task, 0, 256)
			sent += 256
		}
		pSh.TaskDone(pT)
		pSh.GetTask()
	})
	k.NewProc("cons", 0, func(p *sim.Proc) {
		cSh.Bind(p)
		buf := make([]byte, 16)
		rcv := 0
		for rcv < total {
			task, _, ok := cSh.GetTask()
			if !ok {
				return
			}
			if !cSh.GetSpace(task, 0, 256) {
				continue
			}
			for off := uint32(0); off < 256; off += 16 {
				cSh.Read(task, 0, off, buf)
			}
			cSh.PutSpace(task, 0, 256)
			rcv += 256
		}
		cSh.TaskDone(cT)
		cSh.GetTask()
	})

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	if err := k.Run(0); err != nil {
		return r, err
	}
	r.wall = time.Since(start)
	runtime.ReadMemStats(&ms1)
	r.allocs = ms1.Mallocs - ms0.Mallocs
	r.bytesMoved = uint64(total)
	r.readHit = cSh.ReadCacheStats().HitRate()
	r.writeHit = pSh.WriteCacheStats().HitRate()
	return r, nil
}

// shellBench measures the transport and updates the trajectory file.
func shellBench() {
	id := "head-" + time.Now().Format("2006-01-02")
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("Shell transport speed (wall clock) -> " + path)

	const total = 4 << 20 // 4 MiB through a 1 kB stream buffer
	var best shellBenchResult
	best.wall = 1<<63 - 1
	for round := 0; round < 3; round++ {
		r, err := runShellStress(total)
		if err != nil {
			fail(err)
		}
		if r.wall < best.wall {
			best = r
		}
	}

	nsPerKB := float64(best.wall.Nanoseconds()) / (float64(best.bytesMoved) / 1024)
	mbPerS := float64(best.bytesMoved) / (1 << 20) / best.wall.Seconds()
	allocsPerKB := float64(best.allocs) / (float64(best.bytesMoved) / 1024)
	fmt.Printf("  transport: %8.1f ns/KiB  %8.1f MiB/s wall  %6.3f allocs/KiB\n",
		nsPerKB, mbPerS, allocsPerKB)
	fmt.Printf("  caches:    read hit rate %5.1f%%  write hit rate %5.1f%%\n",
		best.readHit*100, best.writeHit*100)

	doc := loadKernelBench(path)
	e := benchEntry(&doc, id)
	e.ShellNsPerKB = nsPerKB
	e.ShellMBPerS = mbPerS
	e.ShellAllocsPerKB = allocsPerKB
	e.ShellReadHitRate = best.readHit
	e.ShellWriteHitRate = best.writeHit
	saveKernelBench(path, &doc)
	fmt.Printf("  merged shell_* fields into entry %q (%d entries total)\n\n", id, len(doc.Entries))
}
