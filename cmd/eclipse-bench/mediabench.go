package main

// Media kernel speed: `eclipse-bench media [entry-id [path]]` measures
// the wall-clock throughput of the functional codec kernels outside the
// cycle simulator — the layer rebuilt by the fast-kernels pass — and
// merges the media_* fields into the matching BENCH_kernel.json entry.
//
// Four measurements are taken (best of three each):
//
//   - vld:    streaming variable-length decode of the Fig. 10 QCIF
//     bitstream through StreamVLD (LUT Huffman + 64-bit bit reads),
//     reported in macroblocks/s and MiB of bitstream/s, with the
//     steady-state allocation count (target: O(1) per run, not per MB);
//   - sad:    16x16 motion-search SAD evaluations/s against a textured
//     reference frame with a realistic candidate-vector mix;
//   - idct:   8x8 inverse-DCT blocks/s on dense random coefficients;
//   - encode: the full encoder (mode decision, motion search,
//     transforms, entropy coding) in macroblocks/s at the default
//     EncodeWorkers, i.e. the parallel analysis pass end to end;
//   - decode: the full functional decoder in macroblocks/s at the
//     default DecodeWorkers — the pipeline-parallel path that overlaps
//     entropy parse with per-row reconstruction when DecodeWorkers > 1.

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"eclipse/internal/media"
)

// mediaBench measures the codec kernels and updates the trajectory file.
func mediaBench() {
	id := "head-" + time.Now().Format("2006-01-02")
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("Media kernel speed (wall clock) -> " + path)

	mbPerS, mibPerS, allocs := measureMediaVLD()
	sadPerS := measureMediaSAD()
	idctPerS := measureMediaIDCT()
	encPerS, workers := measureMediaEncode()
	decPerS, decWorkers := measureMediaDecode()

	fmt.Printf("  vld:    %10.0f MB/s  %8.2f MiB/s bitstream  %6.0f allocs/run\n",
		mbPerS, mibPerS, allocs)
	fmt.Printf("  sad:    %10.2f Mevals/s (16x16, early-out motion-search mix)\n", sadPerS)
	fmt.Printf("  idct:   %10.0f blocks/s (8x8, dense coefficients)\n", idctPerS)
	fmt.Printf("  encode: %10.0f MB/s end-to-end (%d workers)\n", encPerS, workers)
	fmt.Printf("  decode: %10.0f MB/s end-to-end (%d workers)\n", decPerS, decWorkers)

	doc := loadKernelBench(path)
	e := benchEntry(&doc, id)
	// Merge: only the media_* fields belong to this subcommand; the
	// decode_*/kernel_*/shell_*/serve_* results under the same ID stay.
	e.MediaVLDMBPerS = mbPerS
	e.MediaVLDMiBPerS = mibPerS
	e.MediaVLDAllocs = allocs
	e.MediaSADMevalsPerS = sadPerS
	e.MediaIDCTBlocksPerS = idctPerS
	e.MediaEncodeMBPerS = encPerS
	e.MediaEncodeWorkers = workers
	e.MediaDecodeMBPerS = decPerS
	e.MediaDecodeWorkers = decWorkers
	saveKernelBench(path, &doc)
	fmt.Printf("  merged media_* fields into entry %q (%d entries total)\n\n", id, len(doc.Entries))
}

// measureMediaVLD parses the Fig. 10 QCIF bitstream with StreamVLD and
// reports macroblocks/s, bitstream MiB/s, and allocations per run.
func measureMediaVLD() (mbPerS, mibPerS, allocs float64) {
	stream := workload(176, 144, 12, 6, 1)
	var ms0, ms1 runtime.MemStats
	best := time.Duration(1<<63 - 1)
	for round := 0; round < 3; round++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		v := media.NewStreamVLD()
		v.Extend(stream)
		mbs := 0
		for !v.Done() {
			ev, err := v.Next()
			if err != nil {
				fail(err)
			}
			if ev.Kind == media.EventMB {
				mbs++
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if wall < best {
			best = wall
			mbPerS = float64(mbs) / wall.Seconds()
			mibPerS = float64(len(stream)) / (1 << 20) / wall.Seconds()
			allocs = float64(ms1.Mallocs - ms0.Mallocs)
		}
	}
	return mbPerS, mibPerS, allocs
}

// measureMediaSAD times 16x16 SAD evaluations over a textured frame with
// a cycled candidate-vector set, mirroring the motion search's access
// pattern (the early-out threshold is kept inert so every evaluation
// covers the full macroblock).
func measureMediaSAD() float64 {
	ref := media.NewFrame(176, 144)
	state := uint32(12345)
	for i := range ref.Pix {
		state = state*1664525 + 1013904223
		ref.Pix[i] = byte(state >> 24)
	}
	var cur media.MBPixels
	ref.GetMB(3, 3, &cur)
	mvs := []media.MV{{X: 0, Y: 0}, {X: 1, Y: -1}, {X: -3, Y: 2}, {X: 7, Y: 5}, {X: -8, Y: -8}, {X: 4, Y: 0}}
	const evals = 1 << 21
	best := 0.0
	sink := 0
	for round := 0; round < 3; round++ {
		start := time.Now()
		for i := 0; i < evals; i++ {
			sink += media.SAD(&cur, ref, 48, 48, mvs[i%len(mvs)], 1<<30)
		}
		if rate := evals / time.Since(start).Seconds() / 1e6; rate > best {
			best = rate
		}
	}
	mediaBenchSink = sink
	return best
}

// mediaBenchSink defeats dead-code elimination of the SAD loop.
var mediaBenchSink int

// measureMediaIDCT times 8x8 inverse transforms on dense coefficients.
func measureMediaIDCT() float64 {
	var in, out media.Block
	state := uint32(7)
	for i := range in {
		state = state*1664525 + 1013904223
		in[i] = int16(int32(state>>20) - 2048)
	}
	const blocks = 1 << 19
	best := 0.0
	for round := 0; round < 3; round++ {
		start := time.Now()
		for i := 0; i < blocks; i++ {
			media.IDCT(&in, &out)
		}
		if rate := blocks / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best
}

// measureMediaEncode times the full encoder on the Fig. 10 QCIF clip and
// reports macroblocks/s at the default worker count.
func measureMediaEncode() (mbPerS float64, workers int) {
	const w, h, frames = 176, 144, 12
	src := media.DefaultSource(w, h)
	src.Seed = 1
	clip := media.NewSource(src).Frames(frames)
	cfg := media.DefaultCodec(w, h)
	cfg.Q = 6
	mbs := (w / media.MBSize) * (h / media.MBSize) * frames
	best := 0.0
	for round := 0; round < 3; round++ {
		start := time.Now()
		if _, _, _, err := media.Encode(cfg, clip); err != nil {
			fail(err)
		}
		if rate := float64(mbs) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best, media.EncodeWorkers
}

// measureMediaDecode times the full functional decoder on the Fig. 10
// QCIF bitstream at the default DecodeWorkers and reports macroblocks/s.
// With DecodeWorkers > 1 this exercises the pipeline-parallel decoder
// (entropy front-end overlapped with per-row reconstruction workers);
// at 1 it measures the serial reference path.
func measureMediaDecode() (mbPerS float64, workers int) {
	const w, h, frames = 176, 144, 12
	stream := workload(w, h, frames, 6, 1)
	mbs := (w / media.MBSize) * (h / media.MBSize) * frames
	best := 0.0
	for round := 0; round < 3; round++ {
		start := time.Now()
		if _, err := media.Decode(stream); err != nil {
			fail(err)
		}
		if rate := float64(mbs) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	return best, media.DecodeWorkers
}
