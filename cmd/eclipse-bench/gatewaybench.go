package main

// Gateway cluster benchmark: `eclipse-bench gateway [entry-id [path]]`
// stands up 3 in-process eclipse-serve backends behind the
// internal/cluster gateway and records the gateway_* trajectory fields
// of BENCH_kernel.json.
//
// One backend is "laggy": every 10th media request it serves stalls an
// extra 60ms — below the adaptive hedge trigger's 5% quantile, so the
// per-kind p95 stays fast while the p99 is dominated by the stalls.
// Three measured passes over a warm catalog tell the story:
//
//	nohedge  hedging disabled — the p99 eats the full 60ms stall
//	hedge    adaptive hedging — stalled requests are duplicated to the
//	         runner-up backend after ~p95 and the fast answer wins
//	killed   hedging on, one (non-laggy) backend hard-killed mid-run —
//	         retries and passive ejection route around the corpse
//
// Every 200 response in every pass is verified byte-identical to the
// offline codec before any number is recorded; the run aborts if
// hedging does not measurably cut the p99.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"eclipse/internal/cluster"
	"eclipse/internal/media"
	"eclipse/internal/serve"
)

// gwStream is one catalog entry with its offline decode truth.
type gwStream struct {
	stream  []byte
	wantRaw []byte
}

// durQuantileMs reports the q-quantile of ds in milliseconds.
func durQuantileMs(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / 1e6
}

func gatewayBench() {
	id := "head-" + time.Now().Format("2006-01-02")
	path := kernelBenchPath
	if len(os.Args) > 2 {
		id = os.Args[2]
	}
	if len(os.Args) > 3 {
		path = os.Args[3]
	}
	header("Gateway cluster bench -> " + path)

	const (
		nBackends = 3
		nStreams  = 12
		reps      = 20 // measured requests per stream per pass
		warmReps  = 4  // enough AttemptLat samples to arm the adaptive trigger
		slowEvery = 10 // laggy backend stalls every Nth media request
		stall     = 60 * time.Millisecond
	)

	// Catalog with offline truth.
	cat := make([]gwStream, nStreams)
	for i := range cat {
		stream := workload(96, 80, 8, 6, int64(i+1))
		ref, err := media.Decode(stream)
		if err != nil {
			fail(err)
		}
		var raw []byte
		for _, f := range ref.DisplayFrames() {
			raw = append(raw, f.Pix...)
		}
		cat[i] = gwStream{stream: stream, wantRaw: raw}
	}

	// Backends. Index 0 is laggy: its handler stalls every slowEvery-th
	// media request by 60ms before answering.
	srvs := make([]*serve.Server, nBackends)
	tss := make([]*httptest.Server, nBackends)
	addrs := make([]string, nBackends)
	var laggyHits atomic.Int64
	for i := 0; i < nBackends; i++ {
		srvs[i] = serve.New(serve.Config{Workers: 2, BaseSlice: 2 * time.Millisecond, QueueCap: 64})
		h := srvs[i].Handler()
		if i == 0 {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodPost && laggyHits.Add(1)%slowEvery == 0 {
					time.Sleep(stall)
				}
				inner.ServeHTTP(w, r)
			})
		}
		tss[i] = httptest.NewServer(h)
		addrs[i] = tss[i].Listener.Addr().String()
	}
	defer func() {
		for i := range tss {
			tss[i].Close()
		}
	}()

	newGW := func(hedgeOff bool) (*cluster.Gateway, *httptest.Server) {
		gw, err := cluster.New(cluster.Config{
			Backends:      addrs,
			ProbeInterval: 20 * time.Millisecond,
			Rise:          2,
			Fall:          2,
			PassiveFall:   2,
			MaxRetries:    2,
			RetryBase:     2 * time.Millisecond,
			HedgeDisabled: hedgeOff,
		})
		if err != nil {
			fail(err)
		}
		gw.Start()
		ts := httptest.NewServer(gw.Handler())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := gw.WaitReady(ctx, nBackends); err != nil {
			fail(err)
		}
		return gw, ts
	}
	gwOff, tsOff := newGW(true)
	gwOn, tsOn := newGW(false)
	defer func() { tsOff.Close(); gwOff.Stop(); tsOn.Close(); gwOn.Stop() }()

	client := &http.Client{Timeout: 60 * time.Second}
	hits := 0
	total := 0
	post := func(url string, s gwStream, verify, countHit bool) time.Duration {
		start := time.Now()
		resp, err := client.Post(url+"/v1/decode", "application/octet-stream", bytes.NewReader(s.stream))
		if err != nil {
			fail(err)
		}
		el := time.Since(start)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fail(err)
		}
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("gateway bench: status %d from %s: %s", resp.StatusCode, resp.Header.Get(cluster.BackendHeader), body))
		}
		if verify && !bytes.Equal(body, s.wantRaw) {
			fail(fmt.Errorf("gateway bench: response differs from offline codec (backend %s)", resp.Header.Get(cluster.BackendHeader)))
		}
		if countHit {
			total++
			if resp.Header.Get("X-Cache") == serve.CacheHit.String() {
				hits++
			}
		}
		return el
	}
	pass := func(url string, n int, countHit bool) []time.Duration {
		ds := make([]time.Duration, 0, n*len(cat))
		for r := 0; r < n; r++ {
			for _, s := range cat {
				ds = append(ds, post(url, s, true, countHit))
			}
		}
		return ds
	}

	// Warm both gateways: fills the preferred backends' caches and arms
	// the hedge-on gateway's adaptive trigger with AttemptLat samples.
	pass(tsOff.URL, warmReps, false)
	pass(tsOn.URL, warmReps, false)

	// Pass 1: hedging off. The laggy backend's stalls own the p99.
	offLat := pass(tsOff.URL, reps, true)

	// Pass 2: hedging on, counters deltas isolated to this window.
	k := serve.KindDecode
	reqBase := gwOn.Metrics().Requests[k].Load()
	hedgeBase := gwOn.Metrics().Hedges[k].Load()
	winBase := gwOn.Metrics().HedgeWins[k].Load()
	onLat := pass(tsOn.URL, reps, true)
	onReqs := gwOn.Metrics().Requests[k].Load() - reqBase
	onHedges := gwOn.Metrics().Hedges[k].Load() - hedgeBase
	onWins := gwOn.Metrics().HedgeWins[k].Load() - winBase

	// Pass 3: hard-kill a healthy (non-laggy) backend mid-run and keep
	// hedging. Retries + passive ejection must hide the corpse.
	tss[1].CloseClientConnections()
	tss[1].Close()
	killLat := pass(tsOn.URL, reps, false)

	entry := kernelBenchEntry{
		GatewayBackends:     nBackends,
		GatewayRequests:     uint64(len(offLat) + len(onLat) + len(killLat)),
		GatewayAffinityRate: float64(hits) / float64(total),
		GatewayHedgeRate:    float64(onHedges) / float64(onReqs),
		GatewayHedgeWinRate: float64(onWins) / float64(onReqs),
		GatewayP50Ms:        durQuantileMs(onLat, 0.50),
		GatewayP99Ms:        durQuantileMs(onLat, 0.99),
		GatewayNoHedgeP50Ms: durQuantileMs(offLat, 0.50),
		GatewayNoHedgeP99Ms: durQuantileMs(offLat, 0.99),
		GatewayKilledP50Ms:  durQuantileMs(killLat, 0.50),
		GatewayKilledP99Ms:  durQuantileMs(killLat, 0.99),
		GatewayRetries:      gwOn.Metrics().Retries.Load() + gwOff.Metrics().Retries.Load(),
	}
	for _, b := range gwOn.Backends() {
		entry.GatewayEjections += b.Snapshot().Ejections
	}

	fmt.Printf("  affinity: %5.1f%% warm hit rate over %d requests (%d backends)\n",
		100*entry.GatewayAffinityRate, total, nBackends)
	fmt.Printf("  nohedge:  p50 %6.2f ms  p99 %7.2f ms\n", entry.GatewayNoHedgeP50Ms, entry.GatewayNoHedgeP99Ms)
	fmt.Printf("  hedge:    p50 %6.2f ms  p99 %7.2f ms  (hedge rate %4.1f%%, win rate %4.1f%%)\n",
		entry.GatewayP50Ms, entry.GatewayP99Ms, 100*entry.GatewayHedgeRate, 100*entry.GatewayHedgeWinRate)
	fmt.Printf("  killed:   p50 %6.2f ms  p99 %7.2f ms  (%d retries, %d ejections)\n",
		entry.GatewayKilledP50Ms, entry.GatewayKilledP99Ms, entry.GatewayRetries, entry.GatewayEjections)

	if entry.GatewayP99Ms >= 0.75*entry.GatewayNoHedgeP99Ms {
		fail(fmt.Errorf("gateway bench: hedging did not cut p99 (on %.2fms vs off %.2fms)",
			entry.GatewayP99Ms, entry.GatewayNoHedgeP99Ms))
	}
	if entry.GatewayAffinityRate < 0.9 {
		fail(fmt.Errorf("gateway bench: warm affinity hit rate %.2f, want >= 0.9", entry.GatewayAffinityRate))
	}

	doc := loadKernelBench(path)
	e := benchEntry(&doc, id)
	// Merge: only the gateway_* fields belong to this subcommand; other
	// subsystems' results recorded under the same ID are preserved.
	e.Date = time.Now().Format("2006-01-02")
	e.GatewayBackends = entry.GatewayBackends
	e.GatewayRequests = entry.GatewayRequests
	e.GatewayAffinityRate = entry.GatewayAffinityRate
	e.GatewayHedgeRate = entry.GatewayHedgeRate
	e.GatewayHedgeWinRate = entry.GatewayHedgeWinRate
	e.GatewayP50Ms = entry.GatewayP50Ms
	e.GatewayP99Ms = entry.GatewayP99Ms
	e.GatewayNoHedgeP50Ms = entry.GatewayNoHedgeP50Ms
	e.GatewayNoHedgeP99Ms = entry.GatewayNoHedgeP99Ms
	e.GatewayKilledP50Ms = entry.GatewayKilledP50Ms
	e.GatewayKilledP99Ms = entry.GatewayKilledP99Ms
	e.GatewayRetries = entry.GatewayRetries
	e.GatewayEjections = entry.GatewayEjections
	saveKernelBench(path, &doc)
	fmt.Printf("  wrote entry %q (%d entries total)\n\n", id, len(doc.Entries))

	// Drain the backends so the process exits clean.
	for i, srv := range srvs {
		if i == 1 {
			continue // already killed
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
}
