package eclipse

import (
	"testing"

	"eclipse/internal/media"
)

// TestFig10BottleneckRotation reproduces the paper's Figure 10 finding:
// decoding an MPEG GOP, the pipeline bottleneck rotates with the frame
// type — I frames are RLSQ-bound (dense coefficient data), P frames
// DCT-bound, and B frames MC-bound (two prediction fetches from off-chip
// memory). Absolute numbers are ours; the rotation is the paper's.
func TestFig10BottleneckRotation(t *testing.T) {
	res, err := RunFig10(DefaultFig10())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MajorityBottleneck(media.FrameI); got != "rlsq" {
		t.Errorf("I-frame bottleneck = %q, want rlsq (summary %v)", got, res.RotationSummary())
	}
	if got := res.MajorityBottleneck(media.FrameP); got != "dct" {
		t.Errorf("P-frame bottleneck = %q, want dct (summary %v)", got, res.RotationSummary())
	}
	if got := res.MajorityBottleneck(media.FrameB); got != "mc" {
		t.Errorf("B-frame bottleneck = %q, want mc (summary %v)", got, res.RotationSummary())
	}
	// Buffer fillings fluctuate with the GOP as in the paper's plots:
	// the RLSQ input must swing substantially across the run.
	s := res.Collector.Series("dec/rlsq.in")
	if s == nil {
		t.Fatal("missing rlsq series")
	}
	if s.Max() < 2*s.Mean() && s.Mean() < float64(res.BufSizes["rlsq"])/2 {
		t.Errorf("rlsq.in hardly fluctuates: max %.0f mean %.0f", s.Max(), s.Mean())
	}
}

// TestFig10WindowsCoverRun sanity-checks the analysis windows.
func TestFig10WindowsCoverRun(t *testing.T) {
	cfg := DefaultFig10()
	cfg.W, cfg.H, cfg.Frames = 96, 80, 8
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 8 {
		t.Fatalf("%d windows", len(res.Windows))
	}
	var prev uint64
	for i, w := range res.Windows {
		if w.Start != prev || w.End <= w.Start {
			t.Fatalf("window %d: [%d, %d) after %d", i, w.Start, w.End, prev)
		}
		prev = w.End
		if w.Bottleneck == "" {
			t.Fatalf("window %d unclassified", i)
		}
	}
	if res.Windows[len(res.Windows)-1].End != res.Cycles {
		t.Fatalf("last window ends at %d, run at %d", prev, res.Cycles)
	}
}

// TestPipelinedDCTShiftsPBottleneck reproduces the paper's conclusion
// from the Figure 10 analysis: pipelining the DCT coprocessor removes
// the P-frame DCT bottleneck (Section 7 / [14]).
func TestPipelinedDCTShiftsPBottleneck(t *testing.T) {
	cfg := DefaultFig10()
	srcCfg := media.DefaultSource(cfg.W, cfg.H)
	frames := media.NewSource(srcCfg).Frames(cfg.Frames)
	ccfg := media.DefaultCodec(cfg.W, cfg.H)
	stream, _, _, err := media.Encode(ccfg, frames)
	if err != nil {
		t.Fatal(err)
	}

	run := func(pipelined bool) (uint64, string) {
		arch := Fig8()
		arch.Costs.DCTPipelined = pipelined
		sys := NewSystem(arch)
		bufs := DefaultDecodeBuffers()
		app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{Probes: true, Buffers: &bufs})
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := sys.Run(10_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.VerifyAgainstReference(stream); err != nil {
			t.Fatal(err)
		}
		res := &Fig10Result{
			Collector: sys.Collector,
			BufSizes:  map[string]int{"rlsq": bufs.Tok, "dct": bufs.Coef, "mc": bufs.Resid},
		}
		res.Windows = analyzeWindows(app.Sink.Timeline, sys.Collector, res.BufSizes)
		return cycles, res.MajorityBottleneck(media.FrameP)
	}

	baseCycles, baseP := run(false)
	pipeCycles, pipeP := run(true)
	if baseP != "dct" {
		t.Fatalf("baseline P bottleneck = %q", baseP)
	}
	if pipeP == "dct" {
		t.Errorf("pipelined DCT still the P bottleneck")
	}
	if pipeCycles >= baseCycles {
		t.Errorf("pipelining DCT did not speed up the decode: %d vs %d", pipeCycles, baseCycles)
	}
	t.Logf("decode: %d cycles baseline, %d with pipelined DCT; P bottleneck %s -> %s",
		baseCycles, pipeCycles, baseP, pipeP)
}
