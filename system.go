package eclipse

import (
	"fmt"

	"eclipse/internal/coproc"
	"eclipse/internal/kpn"
	"eclipse/internal/mem"
	"eclipse/internal/shell"
	"eclipse/internal/sim"
	"eclipse/internal/trace"
)

// System is an assembled Eclipse instance: kernel, memories, shells, and
// the applications mapped onto it. Create one per simulation run.
type System struct {
	Arch Arch

	K         *sim.Kernel
	Fab       *shell.Fabric
	SRAM      *mem.Memory
	DRAM      *mem.Memory
	Collector *trace.Collector

	copros     map[string]*coproc.Coprocessor
	coproOrder []string           // creation order, for deterministic process start
	tasks      map[string]taskRef // graph task name → placement
	taskOrder  []string           // mapping order, for deterministic monitors
	monitors   []*shell.Monitor
	dramAlloc  uint32
	started    bool
}

type taskRef struct {
	cp *coproc.Coprocessor
	id int
}

// NewSystem builds an empty instance of the architecture.
func NewSystem(arch Arch) *System {
	k := sim.NewKernel()
	sram := mem.New(k, arch.SRAM)
	dram := mem.New(k, arch.DRAM)
	fab := shell.NewFabric(k, sram)
	if arch.DistributedStreams {
		fab.EnableDistributed(mem.Config{
			Width:        arch.SRAM.Width,
			ReadLatency:  1,
			WriteLatency: 1,
			DualPort:     true,
		})
	}
	return &System{
		Arch:      arch,
		K:         k,
		Fab:       fab,
		SRAM:      sram,
		DRAM:      dram,
		Collector: trace.NewCollector(k, arch.SampleInterval),
		copros:    map[string]*coproc.Coprocessor{},
		tasks:     map[string]taskRef{},
	}
}

// Copro returns (lazily creating) the named coprocessor.
func (s *System) Copro(name string) *coproc.Coprocessor {
	if cp, ok := s.copros[name]; ok {
		return cp
	}
	cp := coproc.New(s.Fab.NewShell(s.Arch.shellConfig(name)))
	s.copros[name] = cp
	s.coproOrder = append(s.coproOrder, name)
	return cp
}

// CoproNames returns the names of the instantiated coprocessors, in no
// particular order.
func (s *System) CoproNames() []string {
	names := make([]string, 0, len(s.copros))
	for n := range s.copros {
		names = append(names, n)
	}
	return names
}

// Shell returns the named coprocessor's shell (for measurements).
func (s *System) Shell(name string) *shell.Shell {
	return s.Copro(name).Shell()
}

// AllocDRAM reserves n bytes of off-chip memory (bit-streams, frame
// stores, raw video).
func (s *System) AllocDRAM(n int) (uint32, error) {
	base := (s.dramAlloc + 63) / 64 * 64
	if int(base)+n > s.DRAM.Size() {
		return 0, fmt.Errorf("eclipse: off-chip memory exhausted (%d + %d > %d)", base, n, s.DRAM.Size())
	}
	s.dramAlloc = base + uint32(n)
	return base, nil
}

// MapGraph maps a validated Kahn graph onto the instance: every task goes
// to the coprocessor mapping[task.Fn] with the implementation
// impls[task.Name], and every stream becomes a buffer in the on-chip SRAM
// with access points in the owning shells. budget is the per-task
// weighted-round-robin budget in cycles (0 for the default).
func (s *System) MapGraph(g *kpn.Graph, mapping map[string]string, impls map[string]coproc.Task, budget uint64) error {
	if err := g.Validate(); err != nil {
		return err
	}
	for _, t := range g.Tasks {
		cname, ok := mapping[t.Fn]
		if !ok {
			return fmt.Errorf("eclipse: no coprocessor mapping for function %q (task %s)", t.Fn, t.Name)
		}
		impl, ok := impls[t.Name]
		if !ok || impl == nil {
			return fmt.Errorf("eclipse: no implementation for task %s", t.Name)
		}
		cp := s.Copro(cname)
		id := cp.Shell().AddTask(t.Name, t.Info, budget)
		cp.Install(id, impl)
		s.tasks[t.Name] = taskRef{cp: cp, id: id}
		s.taskOrder = append(s.taskOrder, t.Name)
	}
	for _, st := range g.Streams {
		prod, err := s.endpoint(g, st.From)
		if err != nil {
			return err
		}
		cons := make([]shell.Endpoint, 0, len(st.To))
		for _, c := range st.To {
			ep, err := s.endpoint(g, c)
			if err != nil {
				return err
			}
			cons = append(cons, ep)
		}
		if err := s.Fab.Connect(prod, cons, uint32(st.BufBytes)); err != nil {
			return fmt.Errorf("eclipse: stream %s: %w", st.Name, err)
		}
	}
	return nil
}

// endpoint resolves a graph port reference to a shell endpoint. The port
// id is the port's position in the task's declaration order, which must
// follow the coprocessor model's canonical port order.
func (s *System) endpoint(g *kpn.Graph, ref kpn.PortRef) (shell.Endpoint, error) {
	tr, ok := s.tasks[ref.Task]
	if !ok {
		return shell.Endpoint{}, fmt.Errorf("eclipse: task %s not mapped", ref.Task)
	}
	t := g.Task(ref.Task)
	for i, p := range t.Ports {
		if p.Name == ref.Port {
			return shell.Endpoint{Shell: tr.cp.Shell(), Task: tr.id, Port: i}, nil
		}
	}
	return shell.Endpoint{}, fmt.Errorf("eclipse: port %s not found", ref)
}

// TaskPlace returns the coprocessor name and task id a graph task was
// mapped to.
func (s *System) TaskPlace(taskName string) (copro string, id int, err error) {
	tr, ok := s.tasks[taskName]
	if !ok {
		return "", 0, fmt.Errorf("eclipse: task %s not mapped", taskName)
	}
	return tr.cp.Shell().Name(), tr.id, nil
}

// TaskStats returns the shell measurement counters of a mapped task.
func (s *System) TaskStats(taskName string) (shell.TaskStats, error) {
	tr, ok := s.tasks[taskName]
	if !ok {
		return shell.TaskStats{}, fmt.Errorf("eclipse: task %s not mapped", taskName)
	}
	return tr.cp.Shell().TaskStats(tr.id), nil
}

// StreamStats returns the access-point counters of a mapped task's port
// (by canonical port id).
func (s *System) StreamStats(taskName string, port int) (shell.StreamStats, error) {
	tr, ok := s.tasks[taskName]
	if !ok {
		return shell.StreamStats{}, fmt.Errorf("eclipse: task %s not mapped", taskName)
	}
	return tr.cp.Shell().StreamStats(tr.id, port), nil
}

// ProbeSpace registers a trace probe sampling the space value (available
// data or room) of a mapped task's port, the quantity Figure 10 plots.
func (s *System) ProbeSpace(name, taskName string, port int) error {
	tr, ok := s.tasks[taskName]
	if !ok {
		return fmt.Errorf("eclipse: task %s not mapped", taskName)
	}
	sh := tr.cp.Shell()
	id := tr.id
	s.Collector.Add(name, func() float64 { return float64(sh.Space(id, port)) })
	return nil
}

// ProbeUtilization registers a trace probe sampling a coprocessor's busy
// fraction per sample interval.
func (s *System) ProbeUtilization(name, coproName string) {
	sh := s.Shell(coproName)
	interval := float64(s.Collector.Interval())
	idle := trace.DeltaProbe(sh.IdleCycles, 1)
	s.Collector.Add(name, func() float64 {
		u := 1 - idle()/interval
		if u < 0 {
			return 0
		}
		return u
	})
}

// AddPIMonitor attaches a CPU-side measurement monitor (paper Section
// 5.4): a process that, every interval cycles, reads the memory-mapped
// measurement registers of every mapped task over the PI control bus —
// per-shell idle counters, per-task step counts, and input-port space
// values. Call before Run; read Samples after.
func (s *System) AddPIMonitor(interval uint64) *shell.Monitor {
	m := &shell.Monitor{Bus: shell.NewPIBus(s.K, 4), Interval: interval}
	for _, name := range s.coproOrder {
		m.Regs = append(m.Regs, shell.IdleCyclesReg(s.Shell(name)))
	}
	for _, name := range s.taskOrder {
		tr := s.tasks[name]
		m.Regs = append(m.Regs, shell.TaskStepsReg(tr.cp.Shell(), tr.id))
	}
	s.monitors = append(s.monitors, m)
	return m
}

// Run starts every coprocessor and the measurement sampler, then runs the
// simulation until all tasks finish, the cycle limit is hit (0 = none),
// or a failure (application deadlock, protocol violation) occurs. It
// returns the final cycle count.
func (s *System) Run(limit uint64) (uint64, error) {
	if !s.started {
		s.started = true
		for _, name := range s.coproOrder {
			s.copros[name].Start(s.K)
		}
		for _, m := range s.monitors {
			m.Start(s.K)
		}
		s.Collector.Start()
	}
	err := s.K.Run(limit)
	return s.K.Now(), err
}

// Shutdown releases any process goroutines left parked by a Run call that
// returned a *sim.LimitError pause (every other Run outcome shuts the
// kernel down automatically). It is idempotent and safe to defer
// unconditionally next to NewSystem.
func (s *System) Shutdown() { s.K.Shutdown() }
