module eclipse

go 1.22
