package eclipse

import (
	"fmt"

	"eclipse/internal/media"
	"eclipse/internal/mem"
	"eclipse/internal/shell"
	"eclipse/internal/sim"
)

// Design-space exploration runners (paper Section 7: "Experiments include
// caching strategies in the shell (e.g. varying cache size, cache
// prefetching or not), bus latency and width, etc."), plus the scheduler
// and coupling studies of Sections 5.3 and 2.2.
//
// All runners execute their configuration points concurrently through the
// ParallelMap worker pool (see parallel.go): each point simulates on its
// own private *sim.Kernel, results come back in parameter order, and the
// first failing point's error is surfaced deterministically.

// SweepPoint is one configuration's outcome in a parameter sweep.
type SweepPoint struct {
	Label  string
	Param  float64
	Cycles uint64
	Extra  map[string]float64 // experiment-specific metrics
}

// runDecodeWith runs a decode of stream on a customized architecture and
// returns the cycle count, verifying output correctness.
func runDecodeWith(stream []byte, mutate func(*Arch), opt DecodeOptions) (uint64, *System, error) {
	arch := Fig8()
	if mutate != nil {
		mutate(&arch)
	}
	sys := NewSystem(arch)
	defer sys.Shutdown() // release parked procs if the cycle limit pauses the run
	app, err := sys.AddDecodeApp("dec", stream, opt)
	if err != nil {
		return 0, nil, err
	}
	cycles, err := sys.Run(50_000_000_000)
	if err != nil {
		return 0, nil, err
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		return 0, nil, err
	}
	return cycles, sys, nil
}

// RunCacheSweep measures decode time against shell data-cache capacity
// (read and write caches, lines of the bus width). Expected shape:
// diminishing returns with size (paper Section 7).
func RunCacheSweep(stream []byte, lines []int) ([]SweepPoint, error) {
	return runSweep(lines, func(n int) (SweepPoint, error) {
		cycles, sys, err := runDecodeWith(stream, func(a *Arch) {
			a.Shell.ReadCacheLines = n
			a.Shell.WriteCacheLines = n
		}, DecodeOptions{})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("cache %d lines: %w", n, err)
		}
		st := sys.Shell("rlsq").ReadCacheStats()
		hitRate := 0.0
		if st.Hits+st.Misses > 0 {
			hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		return SweepPoint{
			Label: fmt.Sprintf("%d lines (%d B)", n, n*16), Param: float64(n),
			Cycles: cycles, Extra: map[string]float64{"rlsq_read_hit_rate": hitRate},
		}, nil
	})
}

// RunPrefetchSweep measures decode time against shell prefetch depth
// (0 disables prefetching, the paper's "cache prefetching or not").
func RunPrefetchSweep(stream []byte, depths []int) ([]SweepPoint, error) {
	return runSweep(depths, func(d int) (SweepPoint, error) {
		cycles, _, err := runDecodeWith(stream, func(a *Arch) {
			a.Shell.PrefetchDepth = d
		}, DecodeOptions{})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("prefetch %d: %w", d, err)
		}
		return SweepPoint{Label: fmt.Sprintf("depth %d", d), Param: float64(d), Cycles: cycles}, nil
	})
}

// RunBusWidthSweep measures decode time against the stream-memory data
// path width (the paper's 128-bit choice among alternatives).
func RunBusWidthSweep(stream []byte, widths []int) ([]SweepPoint, error) {
	return runSweep(widths, func(w int) (SweepPoint, error) {
		cycles, sys, err := runDecodeWith(stream, func(a *Arch) {
			a.SRAM.Width = w
			a.Shell.LineBytes = w
		}, DecodeOptions{})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("width %d: %w", w, err)
		}
		return SweepPoint{
			Label: fmt.Sprintf("%d bit", w*8), Param: float64(w), Cycles: cycles,
			Extra: map[string]float64{
				"read_bus_util":  sys.SRAM.ReadPort().Utilization(),
				"write_bus_util": sys.SRAM.WritePort().Utilization(),
			},
		}, nil
	})
}

// RunBusLatencySweep measures decode time against stream-memory access
// latency.
func RunBusLatencySweep(stream []byte, latencies []uint64) ([]SweepPoint, error) {
	return runSweep(latencies, func(l uint64) (SweepPoint, error) {
		cycles, _, err := runDecodeWith(stream, func(a *Arch) {
			a.SRAM.ReadLatency = l
			a.SRAM.WriteLatency = l
		}, DecodeOptions{})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("latency %d: %w", l, err)
		}
		return SweepPoint{Label: fmt.Sprintf("%d cycles", l), Param: float64(l), Cycles: cycles}, nil
	})
}

// RunMsgLatencySweep measures decode time against the putspace-message
// network latency — the cost of the distributed synchronization fabric
// (Section 5.1's Figure 7 messages).
func RunMsgLatencySweep(stream []byte, latencies []uint64) ([]SweepPoint, error) {
	return runSweep(latencies, func(l uint64) (SweepPoint, error) {
		cycles, _, err := runDecodeWith(stream, func(a *Arch) {
			a.Shell.MsgLatency = l
		}, DecodeOptions{})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("msg latency %d: %w", l, err)
		}
		return SweepPoint{Label: fmt.Sprintf("%d cycles", l), Param: float64(l), Cycles: cycles}, nil
	})
}

// RunBufferScaleSweep measures decode time against stream buffer sizing
// (the coupling discussion of Section 2.2: looser coupling needs larger
// buffers; too-small buffers serialize or deadlock the pipeline). Scales
// below the minimum record sizes are reported as failures via the Extra
// metric "failed" = 1.
func RunBufferScaleSweep(stream []byte, scales []float64) ([]SweepPoint, error) {
	base := DefaultDecodeBuffers()
	return runSweep(scales, func(s float64) (SweepPoint, error) {
		bufs := DecodeBuffers{
			Bits:  int(float64(base.Bits) * s),
			Tok:   int(float64(base.Tok) * s),
			Hdr:   int(float64(base.Hdr) * s),
			Coef:  int(float64(base.Coef) * s),
			Resid: int(float64(base.Resid) * s),
			Pix:   int(float64(base.Pix) * s),
		}
		pt := SweepPoint{Label: fmt.Sprintf("%.2gx", s), Param: s, Extra: map[string]float64{}}
		cycles, _, err := runDecodeWith(stream, nil, DecodeOptions{Buffers: &bufs})
		if err != nil {
			pt.Extra["failed"] = 1
		} else {
			pt.Cycles = cycles
		}
		return pt, nil
	})
}

// SchedResult reports a scheduler-experiment run on a dual-application
// workload.
type SchedResult struct {
	Label       string
	Cycles      uint64
	Steps       uint64 // total processing steps across coprocessor tasks
	DeniedSteps uint64 // steps aborted by denied GetSpace
	Switches    uint64
}

// RunSchedulerExperiment decodes two streams simultaneously under the
// given scheduler settings and reports aggregate scheduling behaviour.
// Expected shape: the best-guess policy wastes far fewer processing steps
// than naive round-robin ([13]); larger budgets reduce task switches.
func RunSchedulerExperiment(streamA, streamB []byte, naive bool, budget uint64) (*SchedResult, error) {
	arch := Fig8()
	arch.Shell.NaiveScheduler = naive
	sys := NewSystem(arch)
	defer sys.Shutdown()
	appA, err := sys.AddDecodeApp("a", streamA, DecodeOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	appB, err := sys.AddDecodeApp("b", streamB, DecodeOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	cycles, err := sys.Run(50_000_000_000)
	if err != nil {
		return nil, err
	}
	if err := appA.VerifyAgainstReference(streamA); err != nil {
		return nil, err
	}
	if err := appB.VerifyAgainstReference(streamB); err != nil {
		return nil, err
	}
	res := &SchedResult{Label: fmt.Sprintf("naive=%v budget=%d", naive, budget), Cycles: cycles}
	for _, app := range []string{"a", "b"} {
		for _, task := range []string{"vld", "rlsq", "idct", "mc"} {
			st, err := sys.TaskStats(app + "-" + task)
			if err != nil {
				return nil, err
			}
			res.Steps += st.Steps
			res.DeniedSteps += st.DeniedSteps
			res.Switches += st.Switches
		}
	}
	return res, nil
}

// CouplingPoint is one (sync granularity, buffer size) outcome of the
// coupling micro-experiment.
type CouplingPoint struct {
	Grain    int
	BufBytes int
	Cycles   uint64
	Msgs     uint64
	Deadlock bool
}

// RunCouplingExperiment quantifies Section 2.2: a producer/consumer pair
// moving `total` bytes through one stream buffer, synchronizing every
// `grain` bytes. Finer synchronization lets smaller buffers sustain
// throughput (the paper's motivation for sub-picture synchronization);
// granularity larger than the buffer deadlocks.
func RunCouplingExperiment(total int, grains, bufSizes []int) ([]CouplingPoint, error) {
	type config struct{ grain, buf int }
	configs := make([]config, 0, len(grains)*len(bufSizes))
	for _, grain := range grains {
		for _, buf := range bufSizes {
			configs = append(configs, config{grain, buf})
		}
	}
	return ParallelMap(configs, SweepWorkers, func(_ int, c config) (CouplingPoint, error) {
		grain, buf := c.grain, c.buf
		pt := CouplingPoint{Grain: grain, BufBytes: buf}
		k := sim.NewKernel()
		// A deadlocked configuration surfaces as a cycle-limit pause, which
		// leaves the producer/consumer goroutines parked; release them.
		defer k.Shutdown()
		fab := shell.NewFabric(k, mem.New(k, mem.Fig8SRAM()))
		pSh := fab.NewShell(shell.DefaultConfig("p"))
		cSh := fab.NewShell(shell.DefaultConfig("c"))
		pT := pSh.AddTask("prod", 0, 0)
		cT := cSh.AddTask("cons", 0, 0)
		if err := fab.Connect(shell.Endpoint{Shell: pSh, Task: pT, Port: 0},
			[]shell.Endpoint{{Shell: cSh, Task: cT, Port: 0}}, uint32(buf)); err != nil {
			return CouplingPoint{}, err
		}
		k.NewProc("prod", 0, func(p *sim.Proc) {
			pSh.Bind(p)
			data := make([]byte, grain)
			sent := 0
			for sent < total {
				task, _, ok := pSh.GetTask()
				if !ok {
					return
				}
				if !pSh.GetSpace(task, 0, uint32(grain)) {
					continue
				}
				pSh.Write(task, 0, 0, data)
				pSh.PutSpace(task, 0, uint32(grain))
				sent += grain
			}
			pSh.TaskDone(pT)
			pSh.GetTask()
		})
		k.NewProc("cons", 0, func(p *sim.Proc) {
			cSh.Bind(p)
			buf := make([]byte, grain)
			got := 0
			for got < total {
				task, _, ok := cSh.GetTask()
				if !ok {
					return
				}
				if !cSh.GetSpace(task, 0, uint32(grain)) {
					continue
				}
				cSh.Read(task, 0, 0, buf)
				cSh.PutSpace(task, 0, uint32(grain))
				got += grain
			}
			cSh.TaskDone(cT)
			cSh.GetTask()
		})
		err := k.Run(uint64(total) * 10000)
		if err != nil {
			pt.Deadlock = true
		} else {
			pt.Cycles = k.Now()
			pt.Msgs = pSh.StreamStats(pT, 0).MsgsSent
		}
		return pt, nil
	})
}

// RunMemoryOrganization compares the centralized and distributed stream-
// memory organizations of the paper's Section 6 tradeoff on one decode
// workload.
func RunMemoryOrganization(stream []byte) ([]SweepPoint, error) {
	return runSweep([]bool{false, true}, func(distributed bool) (SweepPoint, error) {
		label := "central SRAM"
		if distributed {
			label = "distributed banks"
		}
		cycles, sys, err := runDecodeWith(stream, func(a *Arch) {
			a.DistributedStreams = distributed
		}, DecodeOptions{})
		if err != nil {
			return SweepPoint{}, fmt.Errorf("%s: %w", label, err)
		}
		pt := SweepPoint{Label: label, Cycles: cycles, Extra: map[string]float64{}}
		if !distributed {
			pt.Extra["read_bus_util"] = sys.SRAM.ReadPort().Utilization()
		}
		return pt, nil
	})
}

// OpsEstimate approximates the arithmetic operations a decoder performs
// on a bitstream (the 16-bit-ops currency of the paper's "36 Gops"
// figure): 2 ops per bitstream bit in the VLD, 20 per run/level token in
// the RLSQ, 2176 per coded 8×8 block for inverse scan/quant/IDCT, and 3
// per pixel for motion compensation and reconstruction.
func OpsEstimate(stream []byte) (uint64, error) {
	v := media.NewStreamVLD()
	v.Extend(stream)
	var ops uint64
	var seq media.SeqHeader
	for {
		ev, err := v.Next()
		if err != nil {
			return 0, err
		}
		switch ev.Kind {
		case media.EventSeq:
			seq = ev.Seq
		case media.EventMB:
			ops += uint64(ev.Bits) * 2
			ops += uint64(ev.Tok.TokenCount()) * 20
			for b := 0; b < media.BlocksPerMB; b++ {
				if ev.Tok.CBP&(1<<b) != 0 {
					ops += 2176
				}
			}
			ops += media.MBPixBytes * 3
		case media.EventEnd:
			_ = seq
			return ops, nil
		}
	}
}

// ThroughputReport summarizes a decode run as the paper's Section 6
// quantities: ops per cycle and the Gops figure this corresponds to at
// the 150 MHz coprocessor clock.
type ThroughputReport struct {
	Cycles       uint64
	Ops          uint64
	OpsPerCycle  float64
	GopsAt150MHz float64
	BusReadUtil  float64
	BusWriteUtil float64
}

// RunThroughput decodes the given streams simultaneously and reports the
// aggregate throughput proxy.
func RunThroughput(streams ...[]byte) (*ThroughputReport, error) {
	sys := NewSystem(Fig8())
	defer sys.Shutdown()
	var apps []*DecodeApp
	for i, st := range streams {
		app, err := sys.AddDecodeApp(fmt.Sprintf("s%d", i), st, DecodeOptions{})
		if err != nil {
			return nil, err
		}
		apps = append(apps, app)
	}
	cycles, err := sys.Run(50_000_000_000)
	if err != nil {
		return nil, err
	}
	var ops uint64
	for i, app := range apps {
		if err := app.VerifyAgainstReference(streams[i]); err != nil {
			return nil, err
		}
		o, err := OpsEstimate(streams[i])
		if err != nil {
			return nil, err
		}
		ops += o
	}
	r := &ThroughputReport{
		Cycles:       cycles,
		Ops:          ops,
		OpsPerCycle:  float64(ops) / float64(cycles),
		BusReadUtil:  sys.SRAM.ReadPort().Utilization(),
		BusWriteUtil: sys.SRAM.WritePort().Utilization(),
	}
	r.GopsAt150MHz = r.OpsPerCycle * 150e6 / 1e9
	return r, nil
}
