package eclipse

import (
	"testing"

	"eclipse/internal/media"
)

// TestThreeWayDecodeEquivalence is the repository's central correctness
// contract: the monolithic reference decoder, the functional Kahn-network
// decoder (goroutines + channels), and the cycle-accurate Eclipse-mapped
// decoder must produce bit-identical frames — Kahn's determinism theorem
// realized across three execution engines.
func TestThreeWayDecodeEquivalence(t *testing.T) {
	stream, _ := encodeSequence(t, 64, 48, 9, nil)

	ref, err := DecodeReference(stream)
	if err != nil {
		t.Fatal(err)
	}

	fun, err := RunFunctionalDecode(stream, DefaultDecodeBuffers())
	if err != nil {
		t.Fatal(err)
	}

	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	ecl := app.Frames()

	if len(ref) != len(fun) || len(ref) != len(ecl) {
		t.Fatalf("frame counts: ref=%d functional=%d eclipse=%d", len(ref), len(fun), len(ecl))
	}
	for i := range ref {
		if fun[i] == nil || !ref[i].Equal(fun[i]) {
			t.Fatalf("frame %d: functional decode differs from reference", i)
		}
		if ecl[i] == nil || !ref[i].Equal(ecl[i]) {
			t.Fatalf("frame %d: eclipse decode differs from reference", i)
		}
	}
}

// TestFunctionalDecodeTinyBuffers checks Kahn determinism across buffer
// sizes in the functional engine: output must not depend on capacity.
func TestFunctionalDecodeTinyBuffers(t *testing.T) {
	stream, _ := encodeSequence(t, 48, 32, 5, nil)
	ref, err := DecodeReference(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []int{1, 4} {
		bufs := DecodeBuffers{
			Bits:  64 * scale,
			Tok:   900 * scale, // must hold one token record
			Hdr:   16 * scale,
			Coef:  media.MBCoefBytes * scale,
			Resid: media.MBCoefBytes * scale,
			Pix:   media.MBPixBytes * scale,
		}
		got, err := RunFunctionalDecode(stream, bufs)
		if err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
		for i := range ref {
			if got[i] == nil || !ref[i].Equal(got[i]) {
				t.Fatalf("scale %d frame %d differs", scale, i)
			}
		}
	}
}

func TestFunctionalDecodeBadStream(t *testing.T) {
	if _, err := RunFunctionalDecode([]byte{1, 2, 3, 4, 5, 6, 7, 8}, DefaultDecodeBuffers()); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerateVideoAndEncodeAPI(t *testing.T) {
	frames := GenerateVideo(DefaultSource(48, 32), 4)
	stream, recon, stats, err := Encode(DefaultCodec(48, 32), frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != 4 || stats.TotalBits() == 0 {
		t.Fatal("encode outputs incomplete")
	}
	seq, err := ParseSeq(stream)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Frames != 4 || seq.W() != 48 {
		t.Fatalf("seq = %+v", seq)
	}
}

// TestHalfPelThreeWayEquivalence runs the three execution engines on a
// half-pel stream: the MPEG-2 MC mode flows through the whole stack.
func TestHalfPelThreeWayEquivalence(t *testing.T) {
	stream, _ := encodeSequence(t, 64, 48, 7, func(c *CodecConfig) { c.HalfPel = true })
	ref, err := DecodeReference(stream)
	if err != nil {
		t.Fatal(err)
	}
	fun, err := RunFunctionalDecode(stream, DefaultDecodeBuffers())
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !ref[i].Equal(fun[i]) || !ref[i].Equal(app.Frames()[i]) {
			t.Fatalf("frame %d differs across engines", i)
		}
	}
}

// TestHalfPelEncodeAppBitExact runs the pipelined encoder with half-pel
// motion estimation, still bit-exact with the reference encoder.
func TestHalfPelEncodeAppBitExact(t *testing.T) {
	cfg := DefaultCodec(48, 32)
	cfg.HalfPel = true
	frames := GenerateVideo(DefaultSource(48, 32), 5)
	sys := NewSystem(Fig8())
	app, err := sys.AddEncodeApp("enc", cfg, frames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(cfg, frames); err != nil {
		t.Fatal(err)
	}
}
