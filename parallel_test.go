package eclipse

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelMapOrderPreserving(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	got, err := ParallelMap(items, 8, func(i, v int) (int, error) {
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelMapEmptyAndSingle(t *testing.T) {
	if got, err := ParallelMap(nil, 4, func(i, v int) (int, error) { return v, nil }); err != nil || got != nil {
		t.Fatalf("empty: got %v, err %v", got, err)
	}
	got, err := ParallelMap([]int{7}, 4, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 8 {
		t.Fatalf("single: got %v, err %v", got, err)
	}
}

func TestParallelMapFirstErrorWins(t *testing.T) {
	// Multiple failing points: the surfaced error must be the one from the
	// lowest failing index, on every run and for every worker count.
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	fail := map[int]bool{13: true, 17: true, 31: true}
	for _, workers := range []int{1, 2, runtime.NumCPU(), 64} {
		for round := 0; round < 5; round++ {
			_, err := ParallelMap(items, workers, func(i, v int) (int, error) {
				if fail[v] {
					return 0, fmt.Errorf("point %d failed", v)
				}
				return v, nil
			})
			if err == nil || err.Error() != "point 13 failed" {
				t.Fatalf("workers=%d round=%d: err = %v, want point 13", workers, round, err)
			}
		}
	}
}

func TestParallelMapErrorCancelsRemainingWork(t *testing.T) {
	// With one worker the dispatch order is the item order, so a failure at
	// index 2 must prevent every later point from running at all.
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := ParallelMap(make([]struct{}, 100), 1, func(i int, _ struct{}) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n != 3 {
		t.Fatalf("ran %d points, want 3 (0, 1, and the failing 2)", n)
	}
}

func TestParallelMapConcurrentCancellation(t *testing.T) {
	// Concurrently, cancellation is best-effort but must still prune: with
	// an immediate failure at index 0 and many slow points, far fewer than
	// all points should execute.
	var ran atomic.Int64
	boom := errors.New("early")
	n := 1000
	_, err := ParallelMap(make([]struct{}, n), 4, func(i int, _ struct{}) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want early", err)
	}
	if got := ran.Load(); got == int64(n) {
		t.Fatalf("cancellation had no effect: all %d points ran", n)
	}
}

// withWorkers runs fn under a forced SweepWorkers setting.
func withWorkers(w int, fn func()) {
	old := SweepWorkers
	SweepWorkers = w
	defer func() { SweepWorkers = old }()
	fn()
}

func TestParallelSweepParity(t *testing.T) {
	// The parallel engine must produce byte-identical sweep results to a
	// sequential run: same cycle counts, same Extra metrics, same order.
	stream := sweepStream(t)
	type sweep struct {
		name string
		run  func() (interface{}, error)
	}
	sweeps := []sweep{
		{"cache", func() (interface{}, error) { return RunCacheSweep(stream, []int{1, 8, 32}) }},
		{"prefetch", func() (interface{}, error) { return RunPrefetchSweep(stream, []int{0, 2, 4}) }},
		{"buswidth", func() (interface{}, error) { return RunBusWidthSweep(stream, []int{4, 16}) }},
		{"buslatency", func() (interface{}, error) { return RunBusLatencySweep(stream, []uint64{1, 8}) }},
		{"msglatency", func() (interface{}, error) { return RunMsgLatencySweep(stream, []uint64{0, 16}) }},
		{"bufscale", func() (interface{}, error) { return RunBufferScaleSweep(stream, []float64{0.05, 1, 2}) }},
		{"coupling", func() (interface{}, error) { return RunCouplingExperiment(4096, []int{16, 256}, []int{64, 1024}) }},
		{"memorg", func() (interface{}, error) { return RunMemoryOrganization(stream) }},
	}
	for _, sw := range sweeps {
		sw := sw
		t.Run(sw.name, func(t *testing.T) {
			var seq, par interface{}
			var seqErr, parErr error
			withWorkers(1, func() { seq, seqErr = sw.run() })
			// Fixed pool of 4 so goroutine interleaving is exercised even
			// on single-core machines.
			withWorkers(4, func() { par, parErr = sw.run() })
			if seqErr != nil || parErr != nil {
				t.Fatalf("seq err %v, par err %v", seqErr, parErr)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("parallel results differ from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

func TestParallelSweepErrorPropagation(t *testing.T) {
	// A failing configuration point must cancel the sweep and surface its
	// error through the parallel engine. An unparseable stream makes every
	// point fail; the reported error must be the first point's.
	garbage := []byte{0xde, 0xad, 0xbe, 0xef}
	for _, workers := range []int{1, 4} {
		withWorkers(workers, func() {
			pts, err := RunCacheSweep(garbage, []int{1, 4, 16})
			if err == nil {
				t.Fatalf("workers=%d: sweep on garbage stream succeeded: %+v", workers, pts)
			}
			if want := "cache 1 lines"; !contains(err.Error(), want) {
				t.Fatalf("workers=%d: err %q does not name the first point (%q)", workers, err, want)
			}
			if pts != nil {
				t.Fatalf("workers=%d: partial results returned alongside error", workers)
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
