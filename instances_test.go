package eclipse

import (
	"testing"
)

// TestInstanceScalability runs the same workload across the template's
// instances: outputs are identical everywhere (the template separates
// function from infrastructure), and performance orders Lite < Fig8 < HD.
func TestInstanceScalability(t *testing.T) {
	stream, _ := encodeSequence(t, 96, 80, 6, nil)
	run := func(arch Arch) uint64 {
		sys := NewSystem(arch)
		app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := sys.Run(50_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.VerifyAgainstReference(stream); err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	lite, fig8, hd := run(Lite()), run(Fig8()), run(HD())
	if !(hd <= fig8 && fig8 < lite) {
		t.Errorf("scaling violated: lite=%d fig8=%d hd=%d", lite, fig8, hd)
	}
	t.Logf("lite %d, fig8 %d, hd %d cycles", lite, fig8, hd)
}

// TestLiteMappingFoldsPipelineOntoOneCoprocessor maps VLD+RLSQ+IDCT onto
// a single time-shared coprocessor: three tasks of different functions on
// one shell, still bit-exact.
func TestLiteMappingFoldsPipelineOntoOneCoprocessor(t *testing.T) {
	stream, _ := encodeSequence(t, 64, 48, 5, nil)
	sys := NewSystem(Lite())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{Mapping: LiteDecodeMapping})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
	// The folded coprocessor must have really time-shared three tasks.
	for _, task := range []string{"vld", "rlsq", "idct"} {
		name, _, err := sys.TaskPlace("dec-" + task)
		if err != nil {
			t.Fatal(err)
		}
		if name != "xform" {
			t.Fatalf("task %s on %s", task, name)
		}
		st, _ := sys.TaskStats("dec-" + task)
		if st.Switches == 0 {
			t.Fatalf("task %s never switched on the shared coprocessor", task)
		}
	}
}

// TestQuadAppStress plans four applications onto one instance. The Fig. 8
// SRAM cannot hold three decoders plus an encoder at default buffer
// sizes; the capacity error is surfaced at configuration time, and both
// the HD instance (more SRAM) and the distributed organization run it.
func TestQuadAppStress(t *testing.T) {
	streams := make([][]byte, 3)
	for i := range streams {
		streams[i], _ = encodeSequence(t, 48, 32, 3, func(c *CodecConfig) { c.Q = 6 + 2*i })
	}
	encCfg := DefaultCodec(48, 32)
	encFrames := GenerateVideo(DefaultSource(48, 32), 3)

	build := func(arch Arch) (*System, []*DecodeApp, *EncodeApp, error) {
		sys := NewSystem(arch)
		var decs []*DecodeApp
		for i, st := range streams {
			d, err := sys.AddDecodeApp(string(rune('a'+i)), st, DecodeOptions{})
			if err != nil {
				return nil, nil, nil, err
			}
			decs = append(decs, d)
		}
		enc, err := sys.AddEncodeApp("e", encCfg, encFrames, EncodeOptions{})
		if err != nil {
			return nil, nil, nil, err
		}
		return sys, decs, enc, nil
	}

	if _, _, _, err := build(Fig8()); err == nil {
		t.Fatal("four apps fit the 32 kB SRAM?")
	}
	for _, arch := range []Arch{HD(), func() Arch { a := Fig8(); a.DistributedStreams = true; return a }()} {
		sys, decs, enc, err := build(arch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(50_000_000_000); err != nil {
			t.Fatal(err)
		}
		for i, d := range decs {
			if err := d.VerifyAgainstReference(streams[i]); err != nil {
				t.Fatalf("decode %d: %v", i, err)
			}
		}
		if err := enc.VerifyAgainstReference(encCfg, encFrames); err != nil {
			t.Fatal(err)
		}
	}
}
