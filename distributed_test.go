package eclipse

import (
	"testing"
)

// TestDistributedStreamsCorrectAndFaster exercises the Section 6 memory-
// organization tradeoff: distributed per-stream banks must decode
// bit-exactly (Kahn determinism) and faster than the contended central
// SRAM, at the cost of flexibility (no shared capacity pool).
func TestDistributedStreamsCorrectAndFaster(t *testing.T) {
	stream, _ := encodeSequence(t, 96, 80, 6, nil)
	run := func(distributed bool) uint64 {
		arch := Fig8()
		arch.DistributedStreams = distributed
		sys := NewSystem(arch)
		app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := sys.Run(10_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.VerifyAgainstReference(stream); err != nil {
			t.Fatalf("distributed=%v: %v", distributed, err)
		}
		return cycles
	}
	central, distributed := run(false), run(true)
	if distributed >= central {
		t.Errorf("distributed banks (%d cycles) not faster than central SRAM (%d)", distributed, central)
	}
	t.Logf("central %d cycles, distributed %d cycles (%.2fx)",
		central, distributed, float64(distributed)/float64(central))
}

// TestDistributedStreamsEscapeTheCapacityWall shows the flexibility side
// of the tradeoff: a workload whose buffers exceed the 32 kB central SRAM
// is impossible centralized but fine distributed.
func TestDistributedStreamsEscapeTheCapacityWall(t *testing.T) {
	stream, _ := encodeSequence(t, 48, 32, 3, nil)
	big := DecodeBuffers{Bits: 8192, Tok: 8192, Hdr: 4096, Coef: 8192, Resid: 8192, Pix: 8192}

	arch := Fig8()
	sys := NewSystem(arch)
	if _, err := sys.AddDecodeApp("dec", stream, DecodeOptions{Buffers: &big}); err == nil {
		t.Fatal("44 kB of buffers fit in the 32 kB central SRAM?")
	}

	arch.DistributedStreams = true
	sys2 := NewSystem(arch)
	app, err := sys2.AddDecodeApp("dec", stream, DecodeOptions{Buffers: &big})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Run(10_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedTranscode runs the simultaneous encode+decode workload
// on distributed banks, bit-exact on both outputs.
func TestDistributedTranscode(t *testing.T) {
	decStream, _ := encodeSequence(t, 48, 32, 4, nil)
	encCfg := DefaultCodec(48, 32)
	encFrames := GenerateVideo(DefaultSource(48, 32), 4)
	arch := Fig8()
	arch.DistributedStreams = true
	sys := NewSystem(arch)
	dec, err := sys.AddDecodeApp("d", decStream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := sys.AddEncodeApp("e", encCfg, encFrames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := dec.VerifyAgainstReference(decStream); err != nil {
		t.Fatal(err)
	}
	if err := enc.VerifyAgainstReference(encCfg, encFrames); err != nil {
		t.Fatal(err)
	}
}
