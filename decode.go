package eclipse

import (
	"fmt"

	"eclipse/internal/copro"
	"eclipse/internal/coproc"
	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// DecodeBuffers sets the stream buffer sizes (bytes, in on-chip SRAM) of
// a decode application. The token buffer must hold the largest token
// record (~800 bytes); the coefficient/residual buffers must hold at
// least one 512-byte macroblock record.
type DecodeBuffers struct {
	Bits, Tok, Hdr, Coef, Resid, Pix int
}

// DefaultDecodeBuffers fits roughly four decode applications in the
// 32 kB Figure 8 stream memory.
func DefaultDecodeBuffers() DecodeBuffers {
	return DecodeBuffers{
		Bits:  512,
		Tok:   1536,
		Hdr:   256,
		Coef:  2048,
		Resid: 2048,
		Pix:   1024,
	}
}

// DecodeGraph builds the MPEG-2-style decoder process network of the
// paper's Figure 2, adapted to this repository's codec: bit-stream source
// → VLD → RLSQ → IDCT → MC → sink, with the VLD's header/motion stream
// broadcast to both the MC and the sink. Task and port declaration order
// follows the coprocessor models' canonical port orders.
func DecodeGraph(name string, buf DecodeBuffers) *kpn.Graph {
	g := kpn.NewGraph(name)
	p := func(s string) string { return name + "-" + s }
	g.AddTask(p("src"), "bitsrc").AddOut("bits")
	g.AddTask(p("vld"), "vld").AddIn("bits").AddOut("tok").AddOut("hdr")
	g.AddTask(p("rlsq"), "rlsq").AddIn("tok").AddOut("coef")
	g.AddTask(p("idct"), "idct").AddIn("coef").AddOut("resid")
	g.AddTask(p("mc"), "mc").AddIn("hdr").AddIn("resid").AddOut("pix")
	g.AddTask(p("sink"), "sink").AddIn("hdr").AddIn("pix")
	g.MustConnect(p("src")+".bits", buf.Bits, p("vld")+".bits")
	g.MustConnect(p("vld")+".tok", buf.Tok, p("rlsq")+".tok")
	g.MustConnect(p("vld")+".hdr", buf.Hdr, p("mc")+".hdr", p("sink")+".hdr")
	g.MustConnect(p("rlsq")+".coef", buf.Coef, p("idct")+".coef")
	g.MustConnect(p("idct")+".resid", buf.Resid, p("mc")+".resid")
	g.MustConnect(p("mc")+".pix", buf.Pix, p("sink")+".pix")
	return g
}

// DecodeOptions customizes a decode application instance.
type DecodeOptions struct {
	Buffers *DecodeBuffers    // nil for defaults
	Mapping map[string]string // fn → coprocessor; nil for DefaultDecodeMapping
	Budget  uint64            // scheduler budget per task; 0 for default
	Chunk   int               // bit-stream transfer unit; 0 for 64
	Probes  bool              // register Figure 10 trace probes
}

// DecodeApp is one decode application mapped onto the instance.
type DecodeApp struct {
	Name  string
	Seq   media.SeqHeader
	Graph *kpn.Graph
	Sink  *copro.Sink
}

// Frames returns the decoded frames in display order (valid after Run).
func (a *DecodeApp) Frames() []*media.Frame { return a.Sink.Frames }

// VerifyAgainstReference decodes the same bitstream with the monolithic
// reference decoder and reports the first mismatch, if any — the
// correctness contract between the Eclipse mapping and Kahn semantics.
func (a *DecodeApp) VerifyAgainstReference(stream []byte) error {
	ref, err := media.Decode(stream)
	if err != nil {
		return err
	}
	want := ref.DisplayFrames()
	got := a.Frames()
	if len(got) != len(want) {
		return fmt.Errorf("eclipse: decoded %d frames, reference has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] == nil {
			return fmt.Errorf("eclipse: frame %d missing", i)
		}
		if !got[i].Equal(want[i]) {
			return fmt.Errorf("eclipse: frame %d differs from reference decode", i)
		}
	}
	return nil
}

// AddDecodeApp loads a bitstream into off-chip memory, builds the decode
// process network, and maps it onto the instance's coprocessors. Multiple
// decode (and encode) applications can be added to one system; the
// multi-tasking coprocessors time-share between them (Section 4.2).
func (s *System) AddDecodeApp(name string, stream []byte, opt DecodeOptions) (*DecodeApp, error) {
	r := media.NewBitReader(stream)
	seq, err := media.ParseSeqHeader(r)
	if err != nil {
		return nil, fmt.Errorf("eclipse: %s: %w", name, err)
	}
	bufs := DefaultDecodeBuffers()
	if opt.Buffers != nil {
		bufs = *opt.Buffers
	}
	mapping := DefaultDecodeMapping
	if opt.Mapping != nil {
		mapping = opt.Mapping
	}
	g := DecodeGraph(name, bufs)

	bitAddr, err := s.AllocDRAM(len(stream))
	if err != nil {
		return nil, err
	}
	s.DRAM.Poke(bitAddr, stream)
	fsBase, err := s.AllocDRAM(3 * seq.W() * seq.H())
	if err != nil {
		return nil, err
	}
	fs, err := copro.NewFramestore(s.DRAM, seq.W(), seq.H(), fsBase)
	if err != nil {
		return nil, err
	}

	costs := &s.Arch.Costs
	sink := &copro.Sink{Costs: costs, Seq: seq}
	p := func(n string) string { return name + "-" + n }
	impls := map[string]coproc.Task{
		p("src"):  &copro.BitSource{Costs: costs, DRAM: s.DRAM, Addr: bitAddr, Len: len(stream), Chunk: opt.Chunk},
		p("vld"):  &copro.VLD{Costs: costs, Chunk: opt.Chunk},
		p("rlsq"): &copro.RLSQ{Costs: costs, Seq: seq},
		p("idct"): &copro.IDCT{Costs: costs, Blocks: seq.Frames * seq.MBCount() * media.BlocksPerMB},
		p("mc"):   &copro.MC{Costs: costs, Seq: seq, FS: fs},
		p("sink"): sink,
	}
	if err := s.MapGraph(g, mapping, impls, opt.Budget); err != nil {
		return nil, err
	}
	if opt.Probes {
		// The Figure 10 quantities: available data in the input stream
		// buffers of the RLSQ, DCT, and MC tasks.
		if err := s.ProbeSpace(name+"/rlsq.in", p("rlsq"), 0); err != nil {
			return nil, err
		}
		if err := s.ProbeSpace(name+"/dct.in", p("idct"), 0); err != nil {
			return nil, err
		}
		if err := s.ProbeSpace(name+"/mc.in", p("mc"), 1); err != nil {
			return nil, err
		}
	}
	return &DecodeApp{Name: name, Seq: seq, Graph: g, Sink: sink}, nil
}
