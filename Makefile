# Eclipse reproduction — build / verify / bench entry points.
#
#   make check   vet + build + full test suite + race-detector pass
#   make test    full test suite only
#   make race    race pass on the concurrency-sensitive packages: the
#                sim kernel, the KPN engine, and the parallel sweep
#                runners (guards that no *sim.Kernel is ever shared
#                across sweep worker goroutines)
#   make bench   paper-experiment benchmarks with allocation stats
#   make perf    refresh the BENCH_kernel.json engine-speed trajectory

GO ?= go

.PHONY: check vet build test race bench perf

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/kpn
	$(GO) test -race -run 'Parallel|Sweep|Coupling|MemoryOrg' .

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

perf:
	$(GO) run ./cmd/eclipse-bench kernel
