# Eclipse reproduction — build / verify / bench entry points.
#
#   make check   vet + build + full test suite + race-detector pass
#   make lint    vet + gofmt formatting check (no test run)
#   make test    full test suite only
#   make race    race pass on the concurrency-sensitive packages: the
#                sim kernel, the KPN engine, the serving subsystem, the
#                shell transport, and the parallel sweep runners (guards
#                that no *sim.Kernel is ever shared across sweep worker
#                goroutines)
#   make fuzz-smoke  a few seconds of each media-layer fuzzer — the CI
#                    guard that the corpus-reachable code stays panic-free
#                    (includes the parallel/serial decode-parity fuzzer
#                    and the fused/two-phase transcode-parity fuzzer)
#   make bench-smoke single-iteration run of the decode/encode/shell
#                    benchmarks, so CI catches harness breakage cheaply
#   make bench-transcode  fused vs two-phase transcode benchmark with
#                         allocation stats and the peak-in-flight gauge
#   make bench-gop   GOP-parallel transcode: segments 1 vs min(NumCPU, 8)
#                    on the same closed-GOP clip; updates the
#                    transcode_seg_* fields of BENCH_kernel.json
#                    (multi-core numbers; ~1x expected on one CPU)
#   make bench   paper-experiment benchmarks with allocation stats
#   make bench-media  media kernel microbenchmarks (bit I/O, VLC, SAD,
#                     DCT, full encode) with allocation stats
#   make perf    refresh the BENCH_kernel.json engine-speed,
#                shell-transport, and media-kernel trajectories
#
#   make bench-baseline   save the current benchmark results as the
#                         comparison baseline (bench-baseline.txt)
#   make benchcmp         re-run the benchmarks and compare against the
#                         saved baseline with benchstat when available
#                         (falls back to printing both runs)

GO ?= go
BENCH_BASELINE ?= bench-baseline.txt
BENCH_NEW      ?= bench-new.txt

.PHONY: check lint vet build test race fuzz-smoke bench-smoke bench bench-media bench-transcode bench-gop bench-gateway bench-gateway-cache perf bench-baseline benchcmp

check: vet build test race

lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/kpn ./internal/serve ./internal/shell ./internal/cluster
	$(GO) test -race -run 'Parallel|Sweep|Coupling|MemoryOrg' .
	$(GO) test -race -run 'Encode|Golden|ParallelParity|DecodeOptions|DisplayFramesInto|Streaming|StreamSink' ./internal/media
	GOMAXPROCS=4 $(GO) test -race -run 'Segment' ./internal/media ./internal/serve

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzBitReaderRoundTrip -fuzztime=5s ./internal/media
	$(GO) test -run=NONE -fuzz=FuzzHuffDecode -fuzztime=5s ./internal/media
	$(GO) test -run=NONE -fuzz=FuzzDecodeParallelParity -fuzztime=5s ./internal/media
	$(GO) test -run=NONE -fuzz=FuzzCacheKeyCanonical -fuzztime=5s ./internal/serve
	$(GO) test -run=NONE -fuzz=FuzzTranscodeFusedParity -fuzztime=5s ./internal/serve
	$(GO) test -run=NONE -fuzz=FuzzTranscodeSegmentedParity -fuzztime=5s ./internal/serve

# bench-smoke compiles and runs every decode/encode/shell benchmark for
# exactly one iteration — a CI-friendly guard that the benchmark
# harnesses themselves stay green without paying for real measurement.
# The first invocation also re-asserts the pinned golden hashes
# (bitstream + reconstruction + simcycles) and the sim kernel's
# allocs-per-op guard in the same pass, so a perf-motivated change
# cannot drift the outputs or the engine's steady-state allocation
# profile without this target going red.
bench-smoke:
	$(GO) test -run='Golden|StressAllocs' -bench='Decode|Fig10' -benchtime=1x ./internal/media ./internal/sim .
	$(GO) test -run=NONE -bench='Encode' -benchtime=1x ./internal/media
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/shell

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

bench-media:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/media

bench-transcode:
	$(GO) test -run=NONE -bench=BenchmarkTranscode -benchmem ./internal/serve

# bench-gop compares the segment-parallel transcode engine (K =
# min(NumCPU, 8) closed-GOP segments) against the fused serial pipeline
# on the same clip and records the transcode_seg_* trajectory fields.
# CAVEAT: the speedup is a multi-core number — on a single-CPU host the
# segmented path is the same serial work plus an indexing pass, so
# expect ~1x there (the entry records transcode_seg_num_cpu).
bench-gop:
	$(GO) run ./cmd/eclipse-bench gop

# bench-gateway stands up 3 in-process eclipse-serve backends (one with
# an injected 60ms tail) behind the cluster gateway and records the
# gateway_* trajectory fields: warm cache-affinity hit rate, hedge rate,
# and p50/p99 with hedging off, on, and with one backend hard-killed.
bench-gateway:
	$(GO) run ./cmd/eclipse-bench gateway

# bench-gateway-cache stands up 3 backends behind a simulated 5ms
# network gap and records the gateway_l1_* trajectory fields: warm L1
# hit p50/p99 vs the proxied two-hop warm hit, the hit rate, the
# revalidation (If-None-Match/304) count, and the backend request
# counts for the hit pass (must be 0) and a 32-way same-key storm
# (must be exactly 1). Hard-fails unless the warm L1 hit p50 is >=10x
# faster than the proxied warm-hit p50.
bench-gateway-cache:
	$(GO) run ./cmd/eclipse-bench gatewaycache pr10-gateway-l1

perf:
	$(GO) run ./cmd/eclipse-bench kernel
	$(GO) run ./cmd/eclipse-bench shell
	$(GO) run ./cmd/eclipse-bench media
	$(GO) run ./cmd/eclipse-bench loadgen
	$(GO) run ./cmd/eclipse-bench gop
	$(GO) run ./cmd/eclipse-bench gateway
	$(GO) run ./cmd/eclipse-bench gatewaycache pr10-gateway-l1

bench-baseline:
	$(GO) test -run=NONE -bench=. -benchmem -count=5 ./... | tee $(BENCH_BASELINE)

benchcmp:
	@test -f $(BENCH_BASELINE) || { \
		echo "no $(BENCH_BASELINE); run 'make bench-baseline' first"; exit 1; }
	$(GO) test -run=NONE -bench=. -benchmem -count=5 ./... | tee $(BENCH_NEW)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASELINE) $(BENCH_NEW); \
	else \
		echo "benchstat not installed; raw results in $(BENCH_BASELINE) / $(BENCH_NEW)"; \
	fi
