// Quickstart: encode a short synthetic video with the reference encoder,
// decode the bitstream on a cycle-accurate Eclipse instance (the paper's
// Figure 8 MPEG subsystem), verify the output bit-exactly, and print the
// performance report.
package main

import (
	"fmt"
	"log"
	"os"

	"eclipse"
)

func main() {
	// 1. A workload: 8 frames of synthetic video, MPEG-style GOP.
	const w, h = 96, 80
	frames := eclipse.GenerateVideo(eclipse.DefaultSource(w, h), 8)
	stream, _, stats, err := eclipse.Encode(eclipse.DefaultCodec(w, h), frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d frames into %d bytes (%d bits)\n",
		len(frames), len(stream), stats.TotalBits())

	// 2. An Eclipse instance: the Figure 8 architecture.
	sys := eclipse.NewSystem(eclipse.Fig8())

	// 3. Map the decoder process network onto the instance.
	app, err := sys.AddDecodeApp("dec", stream, eclipse.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Simulate to completion.
	cycles, err := sys.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded on the Eclipse instance in %d cycles (%.2f ms at 150 MHz)\n",
		cycles, float64(cycles)/150e6*1e3)

	// 5. The decoded frames are bit-exact with the reference decoder —
	// Kahn determinism across execution engines.
	if err := app.VerifyAgainstReference(stream); err != nil {
		log.Fatal(err)
	}
	fmt.Println("output verified bit-exact against the reference decoder")

	// 6. And against the functional (untimed goroutine) execution of the
	// same process network.
	fun, err := eclipse.RunFunctionalDecode(stream, eclipse.DefaultDecodeBuffers())
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range app.Frames() {
		if !f.Equal(fun[i]) {
			log.Fatalf("frame %d differs between engines", i)
		}
	}
	fmt.Println("output also matches the functional Kahn-network execution")
	fmt.Println()
	sys.WriteReport(os.Stdout)
}
