// MPEG decode: reproduce the paper's Figure 10 experiment — decode an
// IPBB GOP on the Figure 8 instance, chart the available data in the
// RLSQ, DCT, and MC input stream buffers over time, and report which
// coprocessor bounds each frame type.
package main

import (
	"fmt"
	"log"
	"strings"

	"eclipse"
	"eclipse/internal/media"
	"eclipse/internal/viz"
)

func main() {
	cfg := eclipse.DefaultFig10()
	fmt.Printf("decoding %d frames of %dx%d (GOP N=%d M=%d, q=%d) on the Figure 8 instance...\n\n",
		cfg.Frames, cfg.W, cfg.H, cfg.GOPN, cfg.GOPM, cfg.Q)
	res, err := eclipse.RunFig10(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// GOP annotation along the time axis, as in the paper's figure.
	var annot strings.Builder
	for _, w := range res.Windows {
		n := int(float64(w.End-w.Start) / float64(res.Cycles) * 72)
		if n < 1 {
			n = 1
		}
		annot.WriteString(w.Type.String())
		annot.WriteString(strings.Repeat(".", n-1))
	}
	chart := viz.DefaultChart()
	for i, stage := range []string{"rlsq", "dct", "mc"} {
		a := ""
		if i == 0 {
			a = annot.String()
		}
		fmt.Print(chart.Render(res.Collector.Series("dec/"+stage+".in"), a))
		fmt.Println()
	}

	fmt.Println("bottleneck per coded frame:")
	for _, w := range res.Windows {
		fmt.Printf("  %2d %v  rlsq %4.0f%%  dct %4.0f%%  mc %4.0f%%  -> %s\n",
			w.Coded, w.Type, w.MeanFill["rlsq"]*100, w.MeanFill["dct"]*100,
			w.MeanFill["mc"]*100, w.Bottleneck)
	}
	fmt.Printf("\nmajority: I -> %s, P -> %s, B -> %s  (paper: rlsq, dct, mc)\n",
		res.MajorityBottleneck(media.FrameI),
		res.MajorityBottleneck(media.FrameP),
		res.MajorityBottleneck(media.FrameB))
	fmt.Printf("total: %d cycles for %d frames\n", res.Cycles, res.Seq.Frames)
}
