// Design-space exploration: the paper's Section 7 methodology. The same
// decode workload runs across shell cache sizes, prefetch depths, and
// stream-bus parameters; the tables show where each resource stops being
// the bottleneck — the feedback the Eclipse designers used before
// committing to gate-level design.
package main

import (
	"fmt"
	"log"

	"eclipse"
)

func main() {
	frames := eclipse.GenerateVideo(eclipse.DefaultSource(96, 80), 8)
	stream, _, _, err := eclipse.Encode(eclipse.DefaultCodec(96, 80), frames)
	if err != nil {
		log.Fatal(err)
	}

	table := func(title, unit string, pts []eclipse.SweepPoint) {
		fmt.Printf("%s\n", title)
		base := pts[len(pts)-1].Cycles // fastest/most-provisioned config
		for _, p := range pts {
			if p.Extra["failed"] == 1 {
				fmt.Printf("  %-16s %12s\n", p.Label, "deadlock")
				continue
			}
			fmt.Printf("  %-16s %12d cycles   +%4.1f%% vs largest\n",
				p.Label, p.Cycles, (float64(p.Cycles)/float64(base)-1)*100)
		}
		fmt.Println()
		_ = unit
	}

	pts, err := eclipse.RunCacheSweep(stream, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		log.Fatal(err)
	}
	table("decode time vs shell cache capacity (lines of 16 B):", "lines", pts)

	pts, err = eclipse.RunPrefetchSweep(stream, []int{0, 1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	table("decode time vs prefetch depth:", "lines", pts)

	pts, err = eclipse.RunBusWidthSweep(stream, []int{4, 8, 16, 32})
	if err != nil {
		log.Fatal(err)
	}
	table("decode time vs stream bus width:", "bytes", pts)

	pts, err = eclipse.RunBusLatencySweep(stream, []uint64{1, 2, 4, 8, 16})
	if err != nil {
		log.Fatal(err)
	}
	table("decode time vs stream memory latency:", "cycles", pts)

	pts, err = eclipse.RunBufferScaleSweep(stream, []float64{0.25, 0.5, 1, 2, 4})
	if err != nil {
		log.Fatal(err)
	}
	table("decode time vs stream buffer sizing:", "scale", pts)
}
