// Transcode: the paper's time-shift scenario. One Eclipse instance
// simultaneously decodes one stream and encodes another; the DCT, RLSQ
// and MC/ME coprocessors each time-share tasks of both applications
// (forward and inverse transforms, quantization and dequantization,
// estimation and reconstruction) — the hardware-reuse flexibility the
// paper motivates in Section 2.1.
package main

import (
	"fmt"
	"log"
	"os"

	"eclipse"
)

func main() {
	const w, h = 96, 80

	// The stream to decode (e.g. the live broadcast being watched).
	watchSrc := eclipse.DefaultSource(w, h)
	watchSrc.Seed = 7
	watched := eclipse.GenerateVideo(watchSrc, 8)
	watchStream, _, _, err := eclipse.Encode(eclipse.DefaultCodec(w, h), watched)
	if err != nil {
		log.Fatal(err)
	}

	// The video to encode (e.g. the broadcast being recorded).
	recSrc := eclipse.DefaultSource(w, h)
	recSrc.Seed = 8
	recorded := eclipse.GenerateVideo(recSrc, 8)
	recCfg := eclipse.DefaultCodec(w, h)

	sys := eclipse.NewSystem(eclipse.Fig8())
	dec, err := sys.AddDecodeApp("watch", watchStream, eclipse.DecodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	enc, err := sys.AddEncodeApp("rec", recCfg, recorded, eclipse.EncodeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	cycles, err := sys.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decode + encode completed in %d cycles (%.2f ms at 150 MHz)\n",
		cycles, float64(cycles)/150e6*1e3)

	if err := dec.VerifyAgainstReference(watchStream); err != nil {
		log.Fatal("decode: ", err)
	}
	fmt.Println("decoded frames bit-exact with the reference decoder")
	if err := enc.VerifyAgainstReference(recCfg, recorded); err != nil {
		log.Fatal("encode: ", err)
	}
	fmt.Printf("encoded bitstream (%d bytes) bit-exact with the reference encoder\n\n",
		len(enc.Bitstream()))

	// Quality of the recording after a decode round trip.
	decoded, err := eclipse.DecodeReference(enc.Bitstream())
	if err != nil {
		log.Fatal(err)
	}
	for i := range decoded {
		fmt.Printf("recorded frame %d: %.1f dB PSNR\n", i, recorded[i].PSNR(decoded[i]))
	}
	fmt.Println()
	sys.WriteReport(os.Stdout)
}
