package eclipse

import (
	"testing"

	"eclipse/internal/media"
)

func TestEncodeAppBitExact(t *testing.T) {
	cfg := media.DefaultCodec(64, 48)
	frames := GenerateVideo(DefaultSource(64, 48), 8)
	sys := NewSystem(Fig8())
	app, err := sys.AddEncodeApp("enc", cfg, frames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := sys.Run(2_000_000_000)
	if err != nil {
		t.Fatalf("Run after %d cycles: %v", sys.K.Now(), err)
	}
	if err := app.VerifyAgainstReference(cfg, frames); err != nil {
		t.Fatal(err)
	}
	t.Logf("encoded %d frames in %d cycles, %d bytes", len(frames), cycles, len(app.Bitstream()))
}

func TestEncodeAppIPPP(t *testing.T) {
	cfg := media.DefaultCodec(48, 32)
	cfg.GOPM = 1
	cfg.GOPN = 4
	frames := GenerateVideo(DefaultSource(48, 32), 6)
	sys := NewSystem(Fig8())
	app, err := sys.AddEncodeApp("enc", cfg, frames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(cfg, frames); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeThenDecodeRoundTripOnEclipse(t *testing.T) {
	// Encode on one instance, decode the produced stream on another:
	// the full codec loop entirely through cycle-accurate hardware models.
	cfg := media.DefaultCodec(48, 32)
	frames := GenerateVideo(DefaultSource(48, 32), 5)

	encSys := NewSystem(Fig8())
	enc, err := encSys.AddEncodeApp("enc", cfg, frames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encSys.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	stream := enc.Bitstream()

	decSys := NewSystem(Fig8())
	dec, err := decSys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decSys.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := dec.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
	// Quality sanity: decoded output approximates the input.
	for i, f := range dec.Frames() {
		if p := frames[i].PSNR(f); p < 22 {
			t.Fatalf("frame %d PSNR %.1f dB", i, p)
		}
	}
}

func TestTranscodeSimultaneousEncodeDecode(t *testing.T) {
	// The paper's time-shift scenario: one instance simultaneously
	// decodes one stream and encodes another, with every coprocessor
	// multi-tasking across the two applications — including the DCT
	// coprocessor running forward and inverse transforms and the RLSQ
	// running quantization and dequantization (Section 2.1's reuse).
	decStream, _ := encodeSequence(t, 48, 32, 5, nil)
	encCfg := media.DefaultCodec(48, 32)
	encFrames := GenerateVideo(DefaultSource(48, 32), 5)

	sys := NewSystem(Fig8())
	dec, err := sys.AddDecodeApp("d", decStream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := sys.AddEncodeApp("e", encCfg, encFrames, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(4_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := dec.VerifyAgainstReference(decStream); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := enc.VerifyAgainstReference(encCfg, encFrames); err != nil {
		t.Fatalf("encode: %v", err)
	}
	// The DCT coprocessor must have executed at least three tasks
	// (decode idct, encode fdct, encode idct) with real switching.
	st, err := sys.TaskStats("e-fdct")
	if err != nil {
		t.Fatal(err)
	}
	if st.Switches == 0 {
		t.Fatal("no task switches on the shared DCT coprocessor")
	}
}

func TestEncodeAppRejectsBadConfig(t *testing.T) {
	cfg := media.DefaultCodec(48, 32)
	cfg.Q = 0
	sys := NewSystem(Fig8())
	if _, err := sys.AddEncodeApp("enc", cfg, GenerateVideo(DefaultSource(48, 32), 2), EncodeOptions{}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := sys.AddEncodeApp("enc", media.DefaultCodec(48, 32), nil, EncodeOptions{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEncodeGraphValidates(t *testing.T) {
	g := EncodeGraph("x", DefaultEncodeBuffers())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 7 || len(g.Streams) != 9 {
		t.Fatalf("graph has %d tasks, %d streams", len(g.Tasks), len(g.Streams))
	}
}
