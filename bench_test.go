package eclipse

// Benchmark harness: one benchmark per paper experiment (see
// EXPERIMENTS.md for the index). Each benchmark iteration performs one
// full cycle-accurate simulation run; the interesting outputs are the
// reported custom metrics (simulated cycles, utilization, rates) plus the
// engine-speed metrics (Mevents/s and allocs/op) tracked across PRs in
// BENCH_kernel.json. Regenerate everything with:
//
//	go test -bench=. -benchmem ./...
//
// or the cmd/eclipse-bench tool for human-readable tables; `eclipse-bench
// kernel` refreshes BENCH_kernel.json.

import (
	"sync"
	"testing"

	"eclipse/internal/media"
)

// benchStreams builds the shared workloads once.
var benchStreams struct {
	once sync.Once
	// qcif is the Figure 10 workload: one QCIF-class IPBB stream.
	qcif []byte
	// sdA/sdB are two independent small streams for dual-decode runs.
	sdA, sdB []byte
	// raw frames and config for encode benchmarks.
	encCfg    media.CodecConfig
	encFrames []*media.Frame
}

// reportMevents reports engine throughput: millions of kernel events
// executed per wall-clock second across all iterations.
func reportMevents(b *testing.B, events uint64) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s/1e6, "Mevents/s")
	}
}

func benchSetup(b *testing.B) {
	b.Helper()
	benchStreams.once.Do(func() {
		mk := func(w, h, n, q int, seed int64) []byte {
			src := media.DefaultSource(w, h)
			src.Seed = seed
			frames := media.NewSource(src).Frames(n)
			cfg := media.DefaultCodec(w, h)
			cfg.Q = q
			stream, _, _, err := media.Encode(cfg, frames)
			if err != nil {
				panic(err)
			}
			return stream
		}
		benchStreams.qcif = mk(176, 144, 12, 6, 1)
		benchStreams.sdA = mk(96, 80, 8, 6, 2)
		benchStreams.sdB = mk(96, 80, 8, 10, 3)
		benchStreams.encCfg = media.DefaultCodec(96, 80)
		src := media.DefaultSource(96, 80)
		src.Seed = 4
		benchStreams.encFrames = media.NewSource(src).Frames(8)
	})
}

// BenchmarkFig10DecodeGOP regenerates experiment E1/E2 (Figures 10 and
// 9): decoding an IPBB GOP on the Figure 8 instance with buffer-filling
// probes. Metrics: simulated cycles, cycles per frame, and the rotation
// verdicts as 1/0 gauges.
func BenchmarkFig10DecodeGOP(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	var res *Fig10Result
	var events uint64
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunFig10Stream(benchStreams.qcif)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	reportMevents(b, events)
	b.ReportMetric(float64(res.Cycles), "simcycles")
	b.ReportMetric(float64(res.Cycles)/float64(res.Seq.Frames), "simcycles/frame")
	verdict := func(t media.FrameType, want string) float64 {
		if res.MajorityBottleneck(t) == want {
			return 1
		}
		return 0
	}
	b.ReportMetric(verdict(media.FrameI, "rlsq"), "I->rlsq")
	b.ReportMetric(verdict(media.FrameP, "dct"), "P->dct")
	b.ReportMetric(verdict(media.FrameB, "mc"), "B->mc")
}

// BenchmarkDualDecode regenerates experiment E4a (Section 6): two
// simultaneous decodes time-sharing every coprocessor. Metrics include
// the task-switch rate the paper quotes at 10–100 kHz.
func BenchmarkDualDecode(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	var cycles uint64
	var switches, steps, events uint64
	for i := 0; i < b.N; i++ {
		sys := NewSystem(Fig8())
		appA, err := sys.AddDecodeApp("a", benchStreams.sdA, DecodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		appB, err := sys.AddDecodeApp("b", benchStreams.sdB, DecodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cycles, err = sys.Run(50_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := appA.VerifyAgainstReference(benchStreams.sdA); err != nil {
			b.Fatal(err)
		}
		if err := appB.VerifyAgainstReference(benchStreams.sdB); err != nil {
			b.Fatal(err)
		}
		switches, steps = 0, 0
		for _, app := range []string{"a", "b"} {
			for _, task := range []string{"vld", "rlsq", "idct", "mc"} {
				st, _ := sys.TaskStats(app + "-" + task)
				switches += st.Switches
				steps += st.Steps
			}
		}
		events += sys.K.Events()
	}
	reportMevents(b, events)
	b.ReportMetric(float64(cycles), "simcycles")
	// Rates at the 150 MHz coprocessor clock.
	sec := float64(cycles) / 150e6
	b.ReportMetric(float64(switches)/sec/1e3, "switches-kHz")
	b.ReportMetric(float64(steps)/sec/1e3, "steps-kHz")
}

// BenchmarkTranscode regenerates experiment E4b (Section 6): simultaneous
// encode + decode (the time-shift scenario), with the DCT, RLSQ, and
// MC/ME coprocessors each running tasks of both directions.
func BenchmarkTranscode(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	var cycles, events uint64
	for i := 0; i < b.N; i++ {
		sys := NewSystem(Fig8())
		dec, err := sys.AddDecodeApp("d", benchStreams.sdA, DecodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		enc, err := sys.AddEncodeApp("e", benchStreams.encCfg, benchStreams.encFrames, EncodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cycles, err = sys.Run(50_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := dec.VerifyAgainstReference(benchStreams.sdA); err != nil {
			b.Fatal(err)
		}
		if err := enc.VerifyAgainstReference(benchStreams.encCfg, benchStreams.encFrames); err != nil {
			b.Fatal(err)
		}
		events += sys.K.Events()
	}
	reportMevents(b, events)
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkCacheSize regenerates experiment E5 (Section 7, cache size
// sweep). One sub-benchmark per capacity; the metric is simulated cycles.
func BenchmarkCacheSize(b *testing.B) {
	benchSetup(b)
	for _, lines := range []int{1, 4, 16, 64} {
		lines := lines
		b.Run(benchName("lines", lines), func(b *testing.B) {
			var pts []SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = RunCacheSweep(benchStreams.sdA, []int{lines})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pts[0].Cycles), "simcycles")
			b.ReportMetric(pts[0].Extra["rlsq_read_hit_rate"], "hitrate")
		})
	}
}

// BenchmarkPrefetch regenerates experiment E6 (Section 7, prefetching or
// not).
func BenchmarkPrefetch(b *testing.B) {
	benchSetup(b)
	for _, depth := range []int{0, 2, 4} {
		depth := depth
		b.Run(benchName("depth", depth), func(b *testing.B) {
			var pts []SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = RunPrefetchSweep(benchStreams.sdA, []int{depth})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pts[0].Cycles), "simcycles")
		})
	}
}

// BenchmarkBusWidth regenerates experiment E7a (Section 7, bus width).
func BenchmarkBusWidth(b *testing.B) {
	benchSetup(b)
	for _, width := range []int{4, 8, 16, 32} {
		width := width
		b.Run(benchName("bytes", width), func(b *testing.B) {
			var pts []SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = RunBusWidthSweep(benchStreams.sdA, []int{width})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pts[0].Cycles), "simcycles")
			b.ReportMetric(pts[0].Extra["read_bus_util"], "read-bus-util")
		})
	}
}

// BenchmarkBusLatency regenerates experiment E7b (Section 7, bus latency).
func BenchmarkBusLatency(b *testing.B) {
	benchSetup(b)
	for _, lat := range []uint64{1, 4, 16} {
		lat := lat
		b.Run(benchName("cycles", int(lat)), func(b *testing.B) {
			var pts []SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = RunBusLatencySweep(benchStreams.sdA, []uint64{lat})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pts[0].Cycles), "simcycles")
		})
	}
}

// BenchmarkScheduler regenerates experiment E8 (Section 5.3 / [13]):
// best-guess vs naive round-robin and the budget sweep, on a dual-decode
// workload.
func BenchmarkScheduler(b *testing.B) {
	benchSetup(b)
	cases := []struct {
		name   string
		naive  bool
		budget uint64
	}{
		{"bestguess-b2000", false, 2000},
		{"naive-b2000", true, 2000},
		{"bestguess-b500", false, 500},
		{"bestguess-b10000", false, 10000},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var res *SchedResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = RunSchedulerExperiment(benchStreams.sdA, benchStreams.sdB, c.naive, c.budget)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "simcycles")
			b.ReportMetric(float64(res.DeniedSteps)/float64(res.Steps), "wasted-steps")
			b.ReportMetric(float64(res.Switches), "switches")
		})
	}
}

// BenchmarkSyncGranularity regenerates experiment E9a (Section 2.2): the
// synchronization-granularity / buffer-size coupling study.
func BenchmarkSyncGranularity(b *testing.B) {
	for _, grain := range []int{16, 64, 256} {
		grain := grain
		b.Run(benchName("grain", grain), func(b *testing.B) {
			var pts []CouplingPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = RunCouplingExperiment(16384, []int{grain}, []int{1024})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pts[0].Cycles), "simcycles")
			b.ReportMetric(float64(pts[0].Msgs), "putspace-msgs")
		})
	}
}

// BenchmarkBufferSize regenerates experiment E9b (Section 2.2): decode
// throughput against stream-buffer sizing.
func BenchmarkBufferSize(b *testing.B) {
	benchSetup(b)
	for _, scale := range []float64{0.5, 1, 2, 4} {
		scale := scale
		b.Run(benchName("scale-pct", int(scale*100)), func(b *testing.B) {
			var pts []SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = RunBufferScaleSweep(benchStreams.sdA, []float64{scale})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pts[0].Cycles), "simcycles")
		})
	}
}

// BenchmarkThroughput regenerates experiment E10 (Section 6): aggregate
// ops-per-cycle for a dual-stream decode, scaled to the Gops figure at
// the paper's 150 MHz clock, plus stream-bus utilizations.
func BenchmarkThroughput(b *testing.B) {
	benchSetup(b)
	var r *ThroughputReport
	for i := 0; i < b.N; i++ {
		var err error
		r, err = RunThroughput(benchStreams.sdA, benchStreams.sdB)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OpsPerCycle, "ops/cycle")
	b.ReportMetric(r.GopsAt150MHz, "Gops@150MHz")
	b.ReportMetric(r.BusReadUtil, "read-bus-util")
	b.ReportMetric(r.BusWriteUtil, "write-bus-util")
}

// BenchmarkPipelinedDCT regenerates the paper's post-Figure 10 design
// change: the pipelined DCT ablation.
func BenchmarkPipelinedDCT(b *testing.B) {
	benchSetup(b)
	for _, pipelined := range []bool{false, true} {
		pipelined := pipelined
		name := "baseline"
		if pipelined {
			name = "pipelined"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				arch := Fig8()
				arch.Costs.DCTPipelined = pipelined
				sys := NewSystem(arch)
				app, err := sys.AddDecodeApp("dec", benchStreams.sdA, DecodeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				cycles, err = sys.Run(50_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if err := app.VerifyAgainstReference(benchStreams.sdA); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkEncode measures the encode pipeline on the instance.
func BenchmarkEncode(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	var cycles, events uint64
	for i := 0; i < b.N; i++ {
		sys := NewSystem(Fig8())
		app, err := sys.AddEncodeApp("enc", benchStreams.encCfg, benchStreams.encFrames, EncodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cycles, err = sys.Run(50_000_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if err := app.VerifyAgainstReference(benchStreams.encCfg, benchStreams.encFrames); err != nil {
			b.Fatal(err)
		}
		events += sys.K.Events()
	}
	reportMevents(b, events)
	b.ReportMetric(float64(cycles), "simcycles")
}

// BenchmarkFunctionalDecode measures the untimed Kahn execution engine on
// the same workload, for engine-overhead comparisons.
func BenchmarkFunctionalDecode(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := RunFunctionalDecode(benchStreams.sdA, DefaultDecodeBuffers()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceDecode measures the plain monolithic decoder.
func BenchmarkReferenceDecode(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := DecodeReference(benchStreams.sdA); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkMemoryOrganization regenerates experiment E11 (the Section 6
// centralized-vs-distributed communication memory tradeoff).
func BenchmarkMemoryOrganization(b *testing.B) {
	benchSetup(b)
	for _, distributed := range []bool{false, true} {
		distributed := distributed
		name := "central"
		if distributed {
			name = "distributed"
		}
		b.Run(name, func(b *testing.B) {
			var pts []SweepPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = RunMemoryOrganization(benchStreams.sdA)
				if err != nil {
					b.Fatal(err)
				}
			}
			idx := 0
			if distributed {
				idx = 1
			}
			b.ReportMetric(float64(pts[idx].Cycles), "simcycles")
		})
	}
}
