package eclipse

import (
	"runtime"

	"eclipse/internal/par"
)

// Parallel design-space sweep engine.
//
// Every point of a parameter sweep (cache size, bus width, coupling
// grain, ...) is an independent cycle-accurate simulation on its own
// *sim.Kernel, so sweeps are embarrassingly parallel: the engine below
// fans the points out over a bounded worker pool while keeping results
// order-preserving and errors deterministic. Individual kernels are
// single-threaded and are never shared across goroutines (enforced by
// `go test -race`); only the point slots of the results slice are written
// concurrently, each by exactly one worker.

// SweepWorkers bounds the number of simulations the sweep runners execute
// concurrently. It defaults to runtime.NumCPU(). Set it to 1 to force
// sequential execution (useful for debugging or reproducing a failure in
// isolation); values <= 0 also mean NumCPU. It must not be changed while
// a sweep is running.
var SweepWorkers = runtime.NumCPU()

// ParallelMap runs fn(i, items[i]) for every item on a worker pool of at
// most `workers` goroutines (<=0 means runtime.NumCPU()) and returns the
// results in input order.
//
// Cancellation is first-error-wins with deterministic reporting: when a
// point fails, no *new* points are started, in-flight points run to
// completion, and the error returned is the one from the lowest-index
// failing point — independent of goroutine timing. (Items are handed out
// in index order, so every index below a failing one has already been
// dispatched and finishes; the minimum over recorded errors is therefore
// stable across runs and worker counts.)
// The pool itself lives in internal/par so the media encoder can share
// it without importing this package.
func ParallelMap[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	return par.Map(items, workers, fn)
}

// runSweep is the shared harness of the SweepPoint-producing runners:
// it maps each parameter through one simulation on the SweepWorkers pool.
func runSweep[T any](params []T, point func(T) (SweepPoint, error)) ([]SweepPoint, error) {
	return ParallelMap(params, SweepWorkers, func(_ int, p T) (SweepPoint, error) {
		return point(p)
	})
}
