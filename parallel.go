package eclipse

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel design-space sweep engine.
//
// Every point of a parameter sweep (cache size, bus width, coupling
// grain, ...) is an independent cycle-accurate simulation on its own
// *sim.Kernel, so sweeps are embarrassingly parallel: the engine below
// fans the points out over a bounded worker pool while keeping results
// order-preserving and errors deterministic. Individual kernels are
// single-threaded and are never shared across goroutines (enforced by
// `go test -race`); only the point slots of the results slice are written
// concurrently, each by exactly one worker.

// SweepWorkers bounds the number of simulations the sweep runners execute
// concurrently. It defaults to runtime.NumCPU(). Set it to 1 to force
// sequential execution (useful for debugging or reproducing a failure in
// isolation); values <= 0 also mean NumCPU. It must not be changed while
// a sweep is running.
var SweepWorkers = runtime.NumCPU()

// ParallelMap runs fn(i, items[i]) for every item on a worker pool of at
// most `workers` goroutines (<=0 means runtime.NumCPU()) and returns the
// results in input order.
//
// Cancellation is first-error-wins with deterministic reporting: when a
// point fails, no *new* points are started, in-flight points run to
// completion, and the error returned is the one from the lowest-index
// failing point — independent of goroutine timing. (Items are handed out
// in index order, so every index below a failing one has already been
// dispatched and finishes; the minimum over recorded errors is therefore
// stable across runs and worker counts.)
func ParallelMap[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	errs := make([]error, n)
	if workers == 1 {
		// Sequential fast path: no goroutines, same semantics.
		for i, it := range items {
			r, err := fn(i, it)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	var (
		next   atomic.Int64 // next item index to dispatch
		failed atomic.Bool  // set on first error: stop dispatching
		wg     sync.WaitGroup
	)
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runSweep is the shared harness of the SweepPoint-producing runners:
// it maps each parameter through one simulation on the SweepWorkers pool.
func runSweep[T any](params []T, point func(T) (SweepPoint, error)) ([]SweepPoint, error) {
	return ParallelMap(params, SweepWorkers, func(_ int, p T) (SweepPoint, error) {
		return point(p)
	})
}
